#include "rpc/protocol.hpp"

#include "obs/trace.hpp"

namespace cosched {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::SubmitJob: return "SubmitJob";
    case MessageType::QueryJobStatus: return "QueryJobStatus";
    case MessageType::QueryScheduleSnapshot: return "QueryScheduleSnapshot";
    case MessageType::GetMetrics: return "GetMetrics";
    case MessageType::Drain: return "Drain";
    case MessageType::Shutdown: return "Shutdown";
    case MessageType::TraceDump: return "TraceDump";
    case MessageType::SubscribeTelemetry: return "SubscribeTelemetry";
    case MessageType::QueryJobTimeline: return "QueryJobTimeline";
    case MessageType::GetAlerts: return "GetAlerts";
  }
  return "?";
}

bool valid_message_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MessageType::SubmitJob) &&
         raw <= static_cast<std::uint8_t>(MessageType::GetAlerts);
}

const char* to_string(RpcStatus status) {
  switch (status) {
    case RpcStatus::Ok: return "ok";
    case RpcStatus::VersionMismatch: return "version mismatch";
    case RpcStatus::BadRequest: return "bad request";
    case RpcStatus::Draining: return "draining";
    case RpcStatus::InvalidJob: return "invalid job";
    case RpcStatus::UnknownJob: return "unknown job";
    case RpcStatus::DeadlineExpired: return "deadline expired";
    case RpcStatus::ServerError: return "server error";
  }
  return "?";
}

std::vector<std::uint8_t> encode_request(const RequestEnvelope& request) {
  WireWriter w;
  w.u16(request.version);
  w.u8(static_cast<std::uint8_t>(request.type));
  w.u64(request.request_id);
  if (request.version >= 3) w.u64(request.trace_id);
  w.bytes_raw(request.body);
  return w.take();
}

bool decode_request(const std::vector<std::uint8_t>& bytes,
                    RequestEnvelope& request) {
  WireReader r(bytes);
  request.version = r.u16();
  std::uint8_t raw_type = r.u8();
  request.request_id = r.u64();
  // trace_id travels only on wires we actually know (<= kProtocolVersion,
  // not every >= 3): an unknown future version must still decode
  // structurally so the server can answer VersionMismatch instead of
  // BadRequest.
  request.trace_id = request.version >= 3 &&
                             request.version <= kProtocolVersion
                         ? r.u64()
                         : 0;
  if (!r.ok() || !valid_message_type(raw_type)) return false;
  request.type = static_cast<MessageType>(raw_type);
  request.body.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                          bytes.size() - r.remaining()),
                      bytes.end());
  return true;
}

std::vector<std::uint8_t> encode_response(const ResponseEnvelope& response) {
  WireWriter w;
  w.u16(response.version);
  w.u8(static_cast<std::uint8_t>(response.type));
  w.u64(response.request_id);
  if (response.version >= 3) w.u64(response.trace_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str(response.error);
  w.bytes_raw(response.body);
  return w.take();
}

bool decode_response(const std::vector<std::uint8_t>& bytes,
                     ResponseEnvelope& response) {
  WireReader r(bytes);
  response.version = r.u16();
  std::uint8_t raw_type = r.u8();
  response.request_id = r.u64();
  response.trace_id = response.version >= 3 &&
                              response.version <= kProtocolVersion
                          ? r.u64()
                          : 0;
  std::uint8_t raw_status = r.u8();
  response.error = r.str();
  if (!r.ok() || !valid_message_type(raw_type) ||
      raw_status > static_cast<std::uint8_t>(RpcStatus::ServerError))
    return false;
  response.type = static_cast<MessageType>(raw_type);
  response.status = static_cast<RpcStatus>(raw_status);
  response.body.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                           bytes.size() - r.remaining()),
                       bytes.end());
  return true;
}

// ---- message bodies ------------------------------------------------------

void encode_trace_job(WireWriter& w, const TraceJob& job) {
  w.real(job.arrival_time);
  w.str(job.name);
  w.u8(static_cast<std::uint8_t>(job.kind));
  w.i32(job.processes);
  w.real(job.work);
  w.real(job.miss_rate);
  w.real(job.sensitivity);
}

bool decode_trace_job(WireReader& r, TraceJob& job) {
  job.arrival_time = r.real();
  job.name = r.str();
  std::uint8_t kind = r.u8();
  job.processes = r.i32();
  job.work = r.real();
  job.miss_rate = r.real();
  job.sensitivity = r.real();
  if (!r.ok() || kind > static_cast<std::uint8_t>(JobKind::Imaginary))
    return false;
  job.kind = static_cast<JobKind>(kind);
  return true;
}

void encode_job_status_view(WireWriter& w, const JobStatusView& view) {
  w.i64(view.id);
  w.str(view.name);
  w.u8(static_cast<std::uint8_t>(view.phase));
  w.real(view.arrival_time);
  w.real(view.admit_time);
  w.real(view.finish_time);
  w.real(view.work);
  w.u32(static_cast<std::uint32_t>(view.procs.size()));
  for (const JobProcView& proc : view.procs) {
    w.i64(proc.gid);
    w.i32(proc.machine);
    w.real(proc.degradation);
    w.real(proc.remaining_work);
  }
}

bool decode_job_status_view(WireReader& r, JobStatusView& view) {
  view.id = r.i64();
  view.name = r.str();
  std::uint8_t phase = r.u8();
  view.arrival_time = r.real();
  view.admit_time = r.real();
  view.finish_time = r.real();
  view.work = r.real();
  std::uint32_t n = r.u32();
  if (!r.ok() || phase > static_cast<std::uint8_t>(JobPhase::Finished) ||
      n > r.remaining())
    return false;
  view.phase = static_cast<JobPhase>(phase);
  view.procs.clear();
  view.procs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    JobProcView proc;
    proc.gid = r.i64();
    proc.machine = r.i32();
    proc.degradation = r.real();
    proc.remaining_work = r.real();
    view.procs.push_back(proc);
  }
  return r.ok();
}

void encode_service_snapshot(WireWriter& w, const ServiceSnapshot& snapshot) {
  w.real(snapshot.now);
  w.i64(snapshot.pending_jobs);
  w.i32(snapshot.free_slots);
  w.u64(snapshot.completions);
  w.real(snapshot.live_degradation_sum);
  w.real(snapshot.mean_live_degradation);
  w.u32(static_cast<std::uint32_t>(snapshot.machines.size()));
  for (const auto& machine : snapshot.machines) {
    w.u32(static_cast<std::uint32_t>(machine.size()));
    for (const ServiceSnapshot::Proc& proc : machine) {
      w.i64(proc.gid);
      w.i64(proc.job);
      w.real(proc.degradation);
    }
  }
}

bool decode_service_snapshot(WireReader& r, ServiceSnapshot& snapshot) {
  snapshot.now = r.real();
  snapshot.pending_jobs = r.i64();
  snapshot.free_slots = r.i32();
  snapshot.completions = r.u64();
  snapshot.live_degradation_sum = r.real();
  snapshot.mean_live_degradation = r.real();
  std::uint32_t machines = r.u32();
  if (!r.ok() || machines > r.remaining()) return false;
  snapshot.machines.clear();
  snapshot.machines.resize(machines);
  for (std::uint32_t m = 0; m < machines; ++m) {
    std::uint32_t procs = r.u32();
    if (!r.ok() || procs > r.remaining()) return false;
    snapshot.machines[m].reserve(procs);
    for (std::uint32_t i = 0; i < procs; ++i) {
      ServiceSnapshot::Proc proc;
      proc.gid = r.i64();
      proc.job = r.i64();
      proc.degradation = r.real();
      snapshot.machines[m].push_back(proc);
    }
  }
  return r.ok();
}

void encode_submit_response(WireWriter& w, const SubmitJobResponse& response,
                            std::uint16_t version) {
  w.i64(response.job_id);
  w.real(response.virtual_now);
  encode_job_status_view(w, response.status);
  if (version < 5) return;  // v1..v4 ack ends here
  w.i32(response.shard_id);
}

bool decode_submit_response(WireReader& r, SubmitJobResponse& response) {
  response.job_id = r.i64();
  response.virtual_now = r.real();
  if (!decode_job_status_view(r, response.status)) return false;
  // v5 extension: present iff the peer wrote it. A v1..v4 ack ends here and
  // shard_id reads as its no-shard default — explicitly reset, so decoding
  // into a reused response cannot leak a stale shard.
  response.shard_id = -1;
  if (r.remaining() == 0) return true;
  response.shard_id = r.i32();
  return r.ok();
}

void encode_status_response(WireWriter& w, const JobStatusResponse& response) {
  w.boolean(response.found);
  w.real(response.virtual_now);
  encode_job_status_view(w, response.status);
}

bool decode_status_response(WireReader& r, JobStatusResponse& response) {
  response.found = r.boolean();
  response.virtual_now = r.real();
  return decode_job_status_view(r, response.status);
}

void encode_metrics_response(WireWriter& w, const MetricsResponse& response,
                             std::uint16_t version) {
  w.real(response.virtual_now);
  w.u64(response.arrivals);
  w.u64(response.admissions);
  w.u64(response.completions);
  w.u64(response.replans);
  w.u64(response.migrations);
  w.real(response.running_mean_degradation);
  w.u64(response.cache.hits);
  w.u64(response.cache.misses);
  w.u64(response.cache.entries);
  w.u64(response.cache.evictions);
  w.str(response.deterministic_csv);
  if (version < 2) return;  // v1 body ends here
  w.u64(response.cache.compactions);
  w.u64(response.astar_searches);
  w.u64(response.astar_expansions);
  w.u64(response.astar_heuristic_evals);
  w.u64(response.rpc_requests_ok);
  w.u64(response.rpc_requests_failed);
  w.u64(response.rpc_request_count);
  w.real(response.rpc_request_seconds_sum);
  w.real(response.rpc_request_seconds_p99);
  if (version < 3) return;  // v2 body ends here
  w.u64(response.queue_wait_count);
  w.real(response.queue_wait_seconds_sum);
  w.real(response.queue_wait_seconds_p99);
  w.u64(response.tracer_dropped_events);
  if (version < 4) return;  // v3 body ends here
  w.u64(response.tail_considered);
  w.u64(response.tail_kept);
  w.u64(response.tail_dropped);
  w.u64(response.tail_pending);
  w.u64(response.tail_retained_spans);
  w.u64(response.latency_exemplar_trace_id);
  w.real(response.latency_exemplar_seconds);
  if (version < 5) return;  // v4 body ends here
  w.i32(response.shard_id);
  w.u64(response.command_queue_depth);
  w.real(response.replan_p95_seconds);
  w.u64(response.router_spillovers);
  w.u64(response.router_remapped_keys);
  w.u32(static_cast<std::uint32_t>(response.shards.size()));
  for (const ShardMetricsEntry& shard : response.shards) {
    w.i32(shard.shard_id);
    w.u64(shard.requests);
    w.u64(shard.arrivals);
    w.u64(shard.admissions);
    w.u64(shard.completions);
    w.u64(shard.replans);
    w.u64(shard.migrations);
    w.real(shard.virtual_now);
    w.u64(shard.queue_depth);
    w.real(shard.replan_p95_seconds);
  }
  if (version < 6) return;  // v5 body ends here
  w.u32(static_cast<std::uint32_t>(response.shard_health.size()));
  for (const ShardHealthEntry& health : response.shard_health) {
    w.i32(health.shard_id);
    w.boolean(health.up);
    w.u64(health.transport_errors);
    w.u64(health.protocol_errors);
    w.u64(health.application_errors);
  }
}

bool decode_metrics_response(WireReader& r, MetricsResponse& response) {
  response.virtual_now = r.real();
  response.arrivals = r.u64();
  response.admissions = r.u64();
  response.completions = r.u64();
  response.replans = r.u64();
  response.migrations = r.u64();
  response.running_mean_degradation = r.real();
  response.cache.hits = r.u64();
  response.cache.misses = r.u64();
  response.cache.entries = r.u64();
  response.cache.evictions = r.u64();
  response.deterministic_csv = r.str();
  if (!r.ok()) return false;
  // v2 extensions: present iff the peer wrote them. A v1 body simply ends
  // here and every extension field reads as its zero default — explicitly
  // reset, so decoding into a reused response cannot leak stale values.
  response.cache.compactions = 0;
  response.astar_searches = 0;
  response.astar_expansions = 0;
  response.astar_heuristic_evals = 0;
  response.rpc_requests_ok = 0;
  response.rpc_requests_failed = 0;
  response.rpc_request_count = 0;
  response.rpc_request_seconds_sum = 0.0;
  response.rpc_request_seconds_p99 = 0.0;
  response.queue_wait_count = 0;
  response.queue_wait_seconds_sum = 0.0;
  response.queue_wait_seconds_p99 = 0.0;
  response.tracer_dropped_events = 0;
  response.tail_considered = 0;
  response.tail_kept = 0;
  response.tail_dropped = 0;
  response.tail_pending = 0;
  response.tail_retained_spans = 0;
  response.latency_exemplar_trace_id = 0;
  response.latency_exemplar_seconds = 0.0;
  response.shard_id = -1;
  response.command_queue_depth = 0;
  response.replan_p95_seconds = 0.0;
  response.router_spillovers = 0;
  response.router_remapped_keys = 0;
  response.shards.clear();
  response.shard_health.clear();
  if (r.remaining() == 0) return true;
  response.cache.compactions = r.u64();
  response.astar_searches = r.u64();
  response.astar_expansions = r.u64();
  response.astar_heuristic_evals = r.u64();
  response.rpc_requests_ok = r.u64();
  response.rpc_requests_failed = r.u64();
  response.rpc_request_count = r.u64();
  response.rpc_request_seconds_sum = r.real();
  response.rpc_request_seconds_p99 = r.real();
  if (!r.ok()) return false;
  // v3 extensions: a v2 body ends here.
  if (r.remaining() == 0) return true;
  response.queue_wait_count = r.u64();
  response.queue_wait_seconds_sum = r.real();
  response.queue_wait_seconds_p99 = r.real();
  response.tracer_dropped_events = r.u64();
  if (!r.ok()) return false;
  // v4 extensions: a v3 body ends here.
  if (r.remaining() == 0) return true;
  response.tail_considered = r.u64();
  response.tail_kept = r.u64();
  response.tail_dropped = r.u64();
  response.tail_pending = r.u64();
  response.tail_retained_spans = r.u64();
  response.latency_exemplar_trace_id = r.u64();
  response.latency_exemplar_seconds = r.real();
  if (!r.ok()) return false;
  // v5 extensions: a v4 body ends here.
  if (r.remaining() == 0) return true;
  response.shard_id = r.i32();
  response.command_queue_depth = r.u64();
  response.replan_p95_seconds = r.real();
  response.router_spillovers = r.u64();
  response.router_remapped_keys = r.u64();
  std::uint32_t shard_count = r.u32();
  if (!r.ok() || shard_count > r.remaining()) return false;
  response.shards.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardMetricsEntry shard;
    shard.shard_id = r.i32();
    shard.requests = r.u64();
    shard.arrivals = r.u64();
    shard.admissions = r.u64();
    shard.completions = r.u64();
    shard.replans = r.u64();
    shard.migrations = r.u64();
    shard.virtual_now = r.real();
    shard.queue_depth = r.u64();
    shard.replan_p95_seconds = r.real();
    response.shards.push_back(shard);
  }
  if (!r.ok()) return false;
  // v6 extensions: a v5 body ends here.
  if (r.remaining() == 0) return true;
  std::uint32_t health_count = r.u32();
  if (!r.ok() || health_count > r.remaining()) return false;
  response.shard_health.reserve(health_count);
  for (std::uint32_t i = 0; i < health_count; ++i) {
    ShardHealthEntry health;
    health.shard_id = r.i32();
    health.up = r.boolean();
    health.transport_errors = r.u64();
    health.protocol_errors = r.u64();
    health.application_errors = r.u64();
    response.shard_health.push_back(health);
  }
  return r.ok();
}

void encode_trace_dump_response(WireWriter& w,
                                const TraceDumpResponse& response) {
  w.boolean(response.enabled);
  w.u64(response.event_count);
  w.str(response.text);
  w.str(response.chrome_json);
}

bool decode_trace_dump_response(WireReader& r, TraceDumpResponse& response) {
  response.enabled = r.boolean();
  response.event_count = r.u64();
  response.text = r.str();
  response.chrome_json = r.str();
  return r.ok();
}

void encode_drain_response(WireWriter& w, const DrainResponse& response) {
  w.u64(response.completions);
  w.real(response.virtual_now);
}

bool decode_drain_response(WireReader& r, DrainResponse& response) {
  response.completions = r.u64();
  response.virtual_now = r.real();
  return r.ok();
}

// ---- streaming telemetry (v3) --------------------------------------------

void encode_telemetry_subscribe_request(
    WireWriter& w, const TelemetrySubscribeRequest& request) {
  w.u32(request.interval_ms);
  w.u32(request.max_frames);
  w.u32(request.max_spans_per_frame);
  w.str(request.prefix);
}

bool decode_telemetry_subscribe_request(WireReader& r,
                                        TelemetrySubscribeRequest& request) {
  request.interval_ms = r.u32();
  request.max_frames = r.u32();
  request.max_spans_per_frame = r.u32();
  request.prefix = r.str();
  return r.ok();
}

void encode_telemetry_subscribe_ack(WireWriter& w,
                                    const TelemetrySubscribeAck& ack) {
  w.u32(ack.interval_ms);
  w.u32(ack.max_spans_per_frame);
}

bool decode_telemetry_subscribe_ack(WireReader& r,
                                    TelemetrySubscribeAck& ack) {
  ack.interval_ms = r.u32();
  ack.max_spans_per_frame = r.u32();
  return r.ok();
}

void encode_telemetry_frame(WireWriter& w, const TelemetryFrame& frame,
                            std::uint16_t version) {
  w.u64(frame.frame_seq);
  w.boolean(frame.last);
  w.u64(frame.dropped_spans);
  w.u32(static_cast<std::uint32_t>(frame.metrics.size()));
  for (const TelemetryMetricSample& m : frame.metrics) {
    w.str(m.name);
    w.real(m.value);
  }
  w.u32(static_cast<std::uint32_t>(frame.spans.size()));
  for (const TelemetrySpanSample& s : frame.spans) {
    w.str(s.name);
    w.u8(s.phase);
    w.u64(s.trace_id);
    w.u64(s.seq);
    w.i32(s.tid);
    w.i32(s.depth);
    w.real(s.wall_us);
    w.real(s.virtual_time);
    w.real(s.value);
    w.str(s.args);
  }
  // v4 frame extension; appended last so a v3 subscriber's decoder stops
  // cleanly at the end of the span list.
  if (version >= 4) w.str(frame.sampling_mode);
}

bool decode_telemetry_frame(WireReader& r, TelemetryFrame& frame) {
  frame.frame_seq = r.u64();
  frame.last = r.boolean();
  frame.dropped_spans = r.u64();
  std::uint32_t metrics = r.u32();
  if (!r.ok() || metrics > r.remaining()) return false;
  frame.metrics.clear();
  frame.metrics.reserve(metrics);
  for (std::uint32_t i = 0; i < metrics; ++i) {
    TelemetryMetricSample m;
    m.name = r.str();
    m.value = r.real();
    frame.metrics.push_back(std::move(m));
  }
  std::uint32_t spans = r.u32();
  if (!r.ok() || spans > r.remaining()) return false;
  frame.spans.clear();
  frame.spans.reserve(spans);
  for (std::uint32_t i = 0; i < spans; ++i) {
    TelemetrySpanSample s;
    s.name = r.str();
    s.phase = r.u8();
    s.trace_id = r.u64();
    s.seq = r.u64();
    s.tid = r.i32();
    s.depth = r.i32();
    s.wall_us = r.real();
    s.virtual_time = r.real();
    s.value = r.real();
    s.args = r.str();
    if (!r.ok() ||
        s.phase > static_cast<std::uint8_t>(Tracer::Phase::Counter))
      return false;
    frame.spans.push_back(std::move(s));
  }
  // v4 extension: present iff the sender wrote it (a v3 frame ends here).
  frame.sampling_mode.clear();
  if (r.remaining() == 0) return r.ok();
  frame.sampling_mode = r.str();
  return r.ok();
}

// ---- decision-journal timeline (v7) --------------------------------------

void encode_journal_event(WireWriter& w, const JournalEvent& event) {
  w.i64(event.job_id);
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.real(event.time);
  w.u64(event.trace_id);
  w.u64(event.seq);
  w.str(event.policy);
  w.i32(event.machine);
  w.i32(event.candidates);
  w.real(event.degradation_delta);
  w.u32(static_cast<std::uint32_t>(event.co_runners.size()));
  for (std::int64_t co : event.co_runners) w.i64(co);
  w.str(event.detail);
}

bool decode_journal_event(WireReader& r, JournalEvent& event) {
  event.job_id = r.i64();
  std::uint8_t raw_kind = r.u8();
  event.time = r.real();
  event.trace_id = r.u64();
  event.seq = r.u64();
  event.policy = r.str();
  event.machine = r.i32();
  event.candidates = r.i32();
  event.degradation_delta = r.real();
  std::uint32_t co_count = r.u32();
  if (!r.ok() || !journal_event_kind_from(raw_kind, event.kind) ||
      co_count > r.remaining())
    return false;
  event.co_runners.clear();
  event.co_runners.reserve(co_count);
  for (std::uint32_t i = 0; i < co_count; ++i)
    event.co_runners.push_back(r.i64());
  event.detail = r.str();
  return r.ok();
}

void encode_timeline_response(WireWriter& w,
                              const JobTimelineResponse& response) {
  w.i64(response.job_id);
  w.boolean(response.found);
  w.boolean(response.truncated);
  w.real(response.virtual_now);
  w.u32(static_cast<std::uint32_t>(response.events.size()));
  for (const JournalEvent& event : response.events)
    encode_journal_event(w, event);
}

bool decode_timeline_response(WireReader& r, JobTimelineResponse& response) {
  response.job_id = r.i64();
  response.found = r.boolean();
  response.truncated = r.boolean();
  response.virtual_now = r.real();
  std::uint32_t count = r.u32();
  if (!r.ok() || count > r.remaining()) return false;
  response.events.clear();
  response.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    JournalEvent event;
    if (!decode_journal_event(r, event)) return false;
    response.events.push_back(std::move(event));
  }
  return r.ok();
}

void encode_alerts_response(WireWriter& w, const AlertsResponse& response) {
  w.boolean(response.engine_enabled);
  w.u64(response.firing);
  w.u32(static_cast<std::uint32_t>(response.alerts.size()));
  for (const AlertEntry& entry : response.alerts) {
    w.i32(entry.shard_id);
    w.str(entry.rule);
    w.u8(entry.state);
    w.u8(entry.severity);
    w.real(entry.value);
    w.real(entry.threshold);
    w.real(entry.since_seconds);
    w.str(entry.detail);
  }
}

bool decode_alerts_response(WireReader& r, AlertsResponse& response) {
  response.engine_enabled = r.boolean();
  response.firing = r.u64();
  std::uint32_t count = r.u32();
  if (!r.ok() || count > r.remaining()) return false;
  response.alerts.clear();
  response.alerts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AlertEntry entry;
    entry.shard_id = r.i32();
    entry.rule = r.str();
    entry.state = r.u8();
    entry.severity = r.u8();
    entry.value = r.real();
    entry.threshold = r.real();
    entry.since_seconds = r.real();
    entry.detail = r.str();
    // The state machine has 4 states and 3 severities; anything else is a
    // corrupted body, not a future extension (those append fields).
    if (!r.ok() || entry.state > 3 || entry.severity > 2) return false;
    response.alerts.push_back(std::move(entry));
  }
  return r.ok();
}

}  // namespace cosched
