#include "rpc/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "online/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cosched {

namespace {

/// Frame-level sampling-mode label advertised to telemetry subscribers:
/// the head-based rate plus the tail policies, e.g.
/// "head:1-in-64,tail(slow-replans)".
std::string sampling_mode_label() {
  std::uint64_t every = Tracer::global().sample_every();
  std::string label =
      every <= 1 ? "head:all" : "head:1-in-" + std::to_string(every);
  std::string tail = TailSampler::global().mode_label();
  if (!tail.empty()) label += "," + tail;
  return label;
}

}  // namespace

CoschedServer::CoschedServer(ServerOptions options)
    : options_(std::move(options)) {
  COSCHED_EXPECTS(options_.worker_threads >= 1);
  COSCHED_EXPECTS(options_.max_connections >= 1);
  service_ = std::make_unique<LiveSchedulerService>(options_.service);
}

CoschedServer::~CoschedServer() { stop(); }

bool CoschedServer::start(std::string& error) {
  NetStatus status = NetStatus::Ok;
  listener_ = Socket::listen_on(options_.host, options_.port,
                                options_.backlog, status);
  if (status != NetStatus::Ok) {
    error = std::string("cannot listen on ") + options_.host + ": " +
            to_string(status);
    return false;
  }
  port_ = listener_.local_port();

  // SLO watchdog: scrape-and-evaluate on a background tick. A standalone
  // server gets the default burn-rate rules against its latency budget
  // unless the caller supplied a rule file. Engine construction is cheap;
  // under COSCHED_ALERTS_DISABLED start() refuses and we drop it.
  if (options_.enable_alerts && !kAlertsDisabled) {
    AlertEngineOptions alert_options = options_.alerts;
    if (alert_options.rules.rules.empty())
      alert_options.rules = default_alert_rules(options_.alert_budget_ms);
    alerts_ = std::make_unique<AlertEngine>(std::move(alert_options));
    alerts_->set_journal(&service_->journal());
    if (!alerts_->start()) alerts_.reset();
  }

  if (options_.enable_http) {
    HttpOptions http_options;
    http_options.host = options_.host;
    http_options.port = options_.http_port;
    http_ = std::make_unique<HttpEndpoint>(http_options);
    http_->handle("/metrics", [this](const std::string&, std::string& body,
                                     std::string& content_type) {
      // Exemplars ride on the side door: a Grafana heatmap cell links
      // straight to the trace behind it. The labeled log/journal families
      // are hand-rendered (the registry callbacks are label-free).
      body = MetricsRegistry::global().render_prometheus(true);
      body += render_log_metrics();
      body += render_journal_metrics(service_->journal());
      if (alerts_) body += render_alert_metrics(*alerts_);
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      return true;
    });
    http_->handle("/healthz", [this](const std::string&, std::string& body,
                                     std::string&) {
      // Firing alerts degrade the verdict (still 200 — the process serves)
      // so a fleet prober sees the watchdog's judgement, not just liveness.
      std::vector<std::string> firing =
          alerts_ ? alerts_->firing_rules() : std::vector<std::string>{};
      if (firing.empty()) {
        body = "ok\n";
      } else {
        body = "degraded: firing";
        for (const std::string& rule : firing) body += " " + rule;
        body += "\n";
      }
      return true;
    });
    http_->handle("/alerts", [this](const std::string& target,
                                    std::string& body,
                                    std::string& content_type) {
      std::vector<AlertView> views =
          alerts_ ? alerts_->views() : std::vector<AlertView>{};
      if (http_query_param(target, "format") == "json") {
        body = render_alerts_json(views, alerts_ != nullptr);
        content_type = "application/json";
      } else {
        body = render_alerts_text(views, alerts_ != nullptr);
      }
      return true;
    });
    http_->handle("/debug/profile", [](const std::string&, std::string& body,
                                       std::string&) {
      // Collapsed-stack ("folded") format: one "path self_us" line per
      // phase, ready for flamegraph.pl / speedscope.
      body = Profiler::global().render_collapsed();
      return true;
    });
    http_->handle("/debug/events", [this](const std::string& target,
                                          std::string& body, std::string&) {
      // ?job=<id> filters to one job's timeline; bare = the newest 256
      // decisions fleet-wide (the firehose view).
      const DecisionJournal& journal = service_->journal();
      const std::string job_param = http_query_param(target, "job");
      if (!job_param.empty()) {
        char* end = nullptr;
        long long id = std::strtoll(job_param.c_str(), &end, 10);
        if (end == job_param.c_str() || *end != '\0') {
          body = "bad job id: " + job_param + "\n";
          return true;
        }
        JobTimeline timeline = journal.query(static_cast<std::int64_t>(id));
        body = "job=" + std::to_string(id) +
               " events=" + std::to_string(timeline.events.size()) +
               " truncated=" + (timeline.truncated ? "1" : "0") + "\n";
        for (const JournalEvent& event : timeline.events)
          body += render_journal_event(event) + "\n";
        return true;
      }
      for (const JournalEvent& event : journal.tail(256))
        body += render_journal_event(event) + "\n";
      return true;
    });
    if (!http_->start(error)) {
      http_.reset();
      listener_.close();
      return false;
    }
  }
  register_observability();

  // A serving scheduler profiles itself: the scoped phase timers cost two
  // clock reads per phase, and /debug/profile needs data behind it.
  Profiler::global().set_enabled(true);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread(&CoschedServer::accept_main, this);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i)
    workers_.emplace_back(&CoschedServer::worker_main, this);
  return true;
}

void CoschedServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_.wait(lock, [&] {
    return stopping_ || shutdown_requested_.load(std::memory_order_acquire);
  });
}

void CoschedServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  finished_.notify_all();
  // The accept loop and the sessions poll with idle_poll_seconds slices and
  // re-check the stop flag, so joining here is bounded; the listener is only
  // closed once no thread can be inside poll() on it.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  listener_.close();
  if (http_) {
    http_->stop();
    http_.reset();
  }
  if (alerts_) {
    alerts_->stop();
    alerts_.reset();
  }
  unregister_observability();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.clear();
    started_ = false;
  }
  service_->stop();
}

void CoschedServer::register_observability() {
  MetricsRegistry& reg = MetricsRegistry::global();
  request_latency_ = &reg.histogram(
      "cosched_rpc_request_seconds", "RPC request service time",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
       1.0, 2.5});
  queue_wait_metric_ = &reg.histogram(kQueueWaitMetricName,
                                      kQueueWaitMetricHelp,
                                      queue_wait_metric_edges());
  auto cb = [&](const char* name, const char* help, const char* type,
                std::function<double()> sample) {
    reg.callback(name, help, type, std::move(sample));
    callback_names_.push_back(name);
  };
  const DegradationCache& cache = service_->oracle_cache();
  cb("cosched_cache_hits_total", "oracle cache hits", "counter",
     [&cache] { return static_cast<double>(cache.stats().hits); });
  cb("cosched_cache_misses_total", "oracle cache misses", "counter",
     [&cache] { return static_cast<double>(cache.stats().misses); });
  cb("cosched_cache_entries", "oracle cache live entries", "gauge",
     [&cache] { return static_cast<double>(cache.stats().entries); });
  cb("cosched_cache_evictions_total",
     "oracle cache entries dropped by compaction", "counter",
     [&cache] { return static_cast<double>(cache.stats().evictions); });
  cb("cosched_cache_compactions_total", "oracle cache compaction passes",
     "counter",
     [&cache] { return static_cast<double>(cache.stats().compactions); });
  cb("cosched_rpc_connections_active", "sessions currently being served",
     "gauge", [this] {
       std::lock_guard<std::mutex> lock(mutex_);
       return static_cast<double>(active_sessions_);
     });
  cb("cosched_rpc_queue_depth", "accepted connections awaiting a worker",
     "gauge", [this] {
       std::lock_guard<std::mutex> lock(mutex_);
       return static_cast<double>(pending_.size());
     });
  cb("cosched_rpc_connections_accepted_total", "connections accepted",
     "counter", [this] {
       return static_cast<double>(stats().accepted_connections);
     });
  cb("cosched_rpc_connections_rejected_total",
     "connections refused at the cap", "counter", [this] {
       return static_cast<double>(stats().rejected_connections);
     });
  cb("cosched_rpc_requests_ok_total", "requests answered Ok", "counter",
     [this] { return static_cast<double>(stats().requests_ok); });
  cb("cosched_rpc_requests_failed_total", "non-Ok responses sent", "counter",
     [this] { return static_cast<double>(stats().requests_failed); });
  cb("cosched_rpc_malformed_frames_total",
     "frames dropped as structurally invalid", "counter",
     [this] { return static_cast<double>(stats().malformed_frames); });
  cb("cosched_tracer_dropped_events_total",
     "trace events overwritten by the per-thread rings", "counter",
     [] { return static_cast<double>(Tracer::global().dropped_events()); });
  cb("cosched_tracer_sampled_out_traces_total",
     "traces suppressed by head-based sampling", "counter", [] {
       return static_cast<double>(Tracer::global().sampled_out_traces());
     });
  cb("cosched_tracer_buffered_events",
     "trace events currently resident across thread rings", "gauge",
     [] { return static_cast<double>(Tracer::global().event_count()); });
  cb("cosched_tail_considered_spans_total",
     "root spans observed by the tail sampler", "counter", [] {
       return static_cast<double>(TailSampler::global().stats().considered);
     });
  cb("cosched_tail_kept_spans_total",
     "root spans retained by the tail sampler (all keep reasons)",
     "counter",
     [] { return static_cast<double>(TailSampler::global().stats().kept()); });
  cb("cosched_tail_dropped_spans_total",
     "root spans rejected by every tail policy", "counter", [] {
       return static_cast<double>(TailSampler::global().stats().dropped);
     });
  cb("cosched_tail_pending_spans",
     "spans parked in the tail sampler's bounded pending window", "gauge",
     [] { return static_cast<double>(TailSampler::global().pending()); });
  cb("cosched_tail_retained_spans",
     "spans resident in the tail sampler's bounded retained ring", "gauge",
     [] { return static_cast<double>(TailSampler::global().retained()); });
  cb("cosched_telemetry_subscribers", "live SubscribeTelemetry streams",
     "gauge", [this] {
       return static_cast<double>(
           telemetry_subscribers_.load(std::memory_order_relaxed));
     });
  cb("cosched_telemetry_frames_total", "telemetry frames pushed", "counter",
     [this] { return static_cast<double>(stats().telemetry_frames); });
  cb("cosched_telemetry_dropped_spans_total",
     "span samples shed by per-subscriber backpressure", "counter", [this] {
       return static_cast<double>(stats().telemetry_dropped_spans);
     });
}

void CoschedServer::unregister_observability() {
  MetricsRegistry& reg = MetricsRegistry::global();
  for (const std::string& name : callback_names_)
    reg.unregister_callback(name);
  callback_names_.clear();
  // The latency histogram stays registered (its samples outlive the server;
  // nothing it references dies with us).
}

ServerStats CoschedServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void CoschedServer::accept_main() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    NetStatus status = NetStatus::Ok;
    Socket conn = listener_.accept_connection(
        Deadline::after(options_.idle_poll_seconds), status);
    if (status == NetStatus::Timeout) continue;
    if (status != NetStatus::Ok) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;  // listener closed by stop()
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    if (pending_.size() + active_sessions_ >= options_.max_connections) {
      // At the cap: refuse by closing. The client sees a clean EOF before
      // any response and reports a transport error it may retry later.
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected_connections;
      continue;  // `conn` closes as it goes out of scope
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.accepted_connections;
    }
    pending_.push_back(std::move(conn));
    wake_.notify_one();
  }
}

void CoschedServer::worker_main() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      ++active_sessions_;
    }
    serve_connection(std::move(conn));
    std::lock_guard<std::mutex> lock(mutex_);
    --active_sessions_;
  }
}

void CoschedServer::serve_connection(Socket socket) {
  std::vector<std::uint8_t> payload;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    FrameStatus frame_status =
        read_frame(socket, payload, Deadline::after(options_.idle_poll_seconds),
                   options_.max_frame_bytes);
    if (frame_status == FrameStatus::Timeout) continue;  // idle connection
    if (frame_status == FrameStatus::Closed) return;     // clean disconnect
    if (frame_status != FrameStatus::Ok) {
      // Truncated / BadMagic / Oversized: the stream is unusable; count it
      // and drop the connection.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
      return;
    }

    WallTimer request_timer;
    RequestEnvelope request;
    ResponseEnvelope response;
    std::uint64_t trace_id = 0;
    if (!decode_request(payload, request)) {
      response.status = RpcStatus::BadRequest;
      response.error = "malformed request envelope";
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    } else if (request.type == MessageType::SubscribeTelemetry) {
      // The connection becomes a server-push stream; serve_telemetry owns
      // it (including the ack and all stats) until the subscriber leaves.
      serve_telemetry(socket, request);
      return;
    } else {
      // Correlation: adopt the client's trace_id (v3+) or mint one, latch
      // the head-based sampling decision, and keep the context installed
      // for the whole dispatch — the scheduler command queue re-installs
      // it on the scheduler thread, so replan and solver spans inherit it.
      trace_id = request.trace_id != 0 ? request.trace_id
                                       : next_server_trace_id();
      TraceContext context = Tracer::global().make_context(trace_id);
      TraceContextScope trace_scope(context);
      // Shard-addressable servers tag the request span with their shard id,
      // so a merged fleet dump attributes every span to its shard.
      std::string span_args = std::string("type=") + to_string(request.type);
      if (options_.shard_id >= 0)
        span_args += " shard=" + std::to_string(options_.shard_id);
      COSCHED_TRACE_SPAN(request_span, "rpc.request", -1.0,
                         std::move(span_args));
      COSCHED_PROFILE_PHASE(request_phase, "rpc.request");
      response = handle_request(request);
      response.trace_id = trace_id;  // echoed on v3+ wires only
    }

    std::vector<std::uint8_t> bytes = encode_response(response);
    FrameStatus write_status = write_frame(
        socket, bytes, Deadline::after(options_.request_deadline_seconds +
                                       options_.idle_poll_seconds));
    // The trace context is gone by now (trace_scope closed with its
    // branch), so the exemplar trace id is passed explicitly.
    if (request_latency_)
      request_latency_->observe(request_timer.seconds(), trace_id);
    if (TailSampler::global().active()) {
      // Tail end-hook: report the finished root span with its measured
      // duration — the keep/drop decision happens *now*, when slowness is
      // known, independent of the head sampler's recording decision.
      CompletedSpan root;
      root.name = "rpc.request";
      root.trace_id = trace_id;
      root.duration_us = request_timer.seconds() * 1e6;
      root.error = response.status != RpcStatus::Ok;
      root.args = std::string("type=") + to_string(response.type);
      TailSampler::global().observe(std::move(root));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.status == RpcStatus::Ok)
        ++stats_.requests_ok;
      else
        ++stats_.requests_failed;
    }
    if (write_status != FrameStatus::Ok) return;  // peer went away mid-reply
    if (response.status == RpcStatus::Ok &&
        response.type == MessageType::Shutdown) {
      // Acknowledged; trip the latch after the reply is on the wire.
      shutdown_requested_.store(true, std::memory_order_release);
      finished_.notify_all();
      return;
    }
  }
}

std::uint64_t CoschedServer::next_server_trace_id() {
  // Deterministic per-server sequence, mixed so server-minted ids do not
  // collide with the small integers clients tend to pick; | 1 keeps them
  // nonzero (0 means "no trace" everywhere).
  std::uint64_t n = trace_id_counter_.fetch_add(1, std::memory_order_relaxed);
  return SplitMix64(0xC05C4EDB00C5ULL + n).next() | 1;
}

void CoschedServer::serve_telemetry(Socket& socket,
                                    const RequestEnvelope& request) {
  ResponseEnvelope ack;
  ack.type = request.type;
  ack.request_id = request.request_id;
  ack.version = request.version;

  auto fail = [&](RpcStatus status, const char* error) {
    ack.status = status;
    ack.error = error;
    write_frame(socket, encode_response(ack),
                Deadline::after(options_.idle_poll_seconds));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_failed;
  };

  if (request.version < 3) {
    fail(RpcStatus::BadRequest, "SubscribeTelemetry requires protocol v3");
    return;
  }
  TelemetrySubscribeRequest sub;
  WireReader reader(request.body);
  if (!decode_telemetry_subscribe_request(reader, sub) ||
      !reader.complete()) {
    fail(RpcStatus::BadRequest, "malformed SubscribeTelemetry body");
    return;
  }

  const double interval_seconds =
      static_cast<double>(std::max<std::uint32_t>(sub.interval_ms, 10)) /
      1000.0;
  const std::size_t max_spans =
      sub.max_spans_per_frame == 0 ? 512 : sub.max_spans_per_frame;
  std::uint64_t trace_id =
      request.trace_id != 0 ? request.trace_id : next_server_trace_id();

  TelemetrySubscribeAck ack_body;
  ack_body.interval_ms =
      static_cast<std::uint32_t>(interval_seconds * 1000.0);
  ack_body.max_spans_per_frame = static_cast<std::uint32_t>(max_spans);
  WireWriter ack_writer;
  encode_telemetry_subscribe_ack(ack_writer, ack_body);
  ack.trace_id = trace_id;
  ack.status = RpcStatus::Ok;
  ack.body = ack_writer.take();
  if (write_frame(socket, encode_response(ack),
                  Deadline::after(options_.request_deadline_seconds)) !=
      FrameStatus::Ok)
    return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_ok;
  }

  telemetry_subscribers_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cursor = Tracer::global().current_seq();
  std::uint64_t frame_seq = 0;
  std::vector<std::uint8_t> inbound;

  auto send_frame = [&](bool last) -> bool {
    TelemetryFrame frame;
    frame.frame_seq = frame_seq++;
    frame.last = last;
    // v4 subscribers learn which sampling configuration produced the span
    // stream (the label travels per frame: knobs can change mid-stream).
    if (request.version >= 4) frame.sampling_mode = sampling_mode_label();
    std::vector<PrometheusSample> samples;
    if (parse_prometheus_text(MetricsRegistry::global().render_prometheus(),
                              samples)) {
      frame.metrics.reserve(samples.size());
      for (PrometheusSample& s : samples) {
        TelemetryMetricSample m;
        m.name = s.labels.empty() ? std::move(s.name)
                                  : s.name + "{" + s.labels + "}";
        m.value = s.value;
        frame.metrics.push_back(std::move(m));
      }
    }
    Tracer::TelemetryBatch batch =
        Tracer::global().collect_since(cursor, sub.prefix, max_spans);
    cursor = batch.next_cursor;
    frame.dropped_spans = batch.dropped;
    frame.spans.reserve(batch.events.size());
    for (Tracer::TelemetryEvent& e : batch.events) {
      TelemetrySpanSample s;
      s.name = std::move(e.name);
      s.phase = static_cast<std::uint8_t>(e.phase);
      s.trace_id = e.trace_id;
      s.seq = e.seq;
      s.tid = e.tid;
      s.depth = e.depth;
      s.wall_us = e.wall_us;
      s.virtual_time = e.virtual_time;
      s.value = e.value;
      s.args = std::move(e.args);
      frame.spans.push_back(std::move(s));
    }
    ResponseEnvelope push;
    push.version = request.version;
    push.type = request.type;
    push.request_id = request.request_id;
    push.trace_id = trace_id;
    push.status = RpcStatus::Ok;
    WireWriter body;
    encode_telemetry_frame(body, frame, request.version);
    push.body = body.take();
    // A subscriber that cannot drain a frame within one interval (plus the
    // poll slack) is dropped — per-subscriber buffering stays bounded at
    // one in-flight frame.
    bool ok = write_frame(socket, encode_response(push),
                          Deadline::after(interval_seconds +
                                          options_.idle_poll_seconds)) ==
              FrameStatus::Ok;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (ok) ++stats_.telemetry_frames;
    stats_.telemetry_dropped_spans += batch.dropped;
    return ok;
  };

  bool running = true;
  while (running) {
    // Pace one interval, watching the stop flag and the subscriber socket
    // (a frame from the client = polite unsubscribe; EOF/garbage = gone).
    Deadline tick = Deadline::after(interval_seconds);
    bool unsubscribe = false;
    bool disconnected = false;
    while (!tick.expired()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
          unsubscribe = true;
          break;
        }
      }
      double slice =
          std::min(options_.idle_poll_seconds,
                   static_cast<double>(tick.remaining_ms()) / 1000.0);
      if (socket.wait_readable(Deadline::after(slice)) != NetStatus::Ok)
        continue;  // timeout: keep pacing
      FrameStatus in = read_frame(socket, inbound,
                                  Deadline::after(options_.idle_poll_seconds),
                                  options_.max_frame_bytes);
      if (in == FrameStatus::Ok) {
        unsubscribe = true;  // any client frame ends the stream cleanly
      } else {
        disconnected = true;  // EOF or a broken stream
        if (in != FrameStatus::Closed) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.malformed_frames;
        }
      }
      break;
    }
    if (disconnected) break;
    if (unsubscribe) {
      send_frame(true);  // best-effort final frame
      break;
    }
    bool last = sub.max_frames != 0 && frame_seq + 1 >= sub.max_frames;
    if (!send_frame(last) || last) running = false;
  }
  telemetry_subscribers_.fetch_sub(1, std::memory_order_relaxed);
}

ResponseEnvelope CoschedServer::handle_request(const RequestEnvelope& request) {
  ResponseEnvelope response;
  response.type = request.type;
  response.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    response.status = RpcStatus::VersionMismatch;
    response.error = "server speaks protocol versions " +
                     std::to_string(kMinProtocolVersion) + ".." +
                     std::to_string(kProtocolVersion);
    return response;
  }
  // Answer in the requester's version: a v1 peer gets v1 bodies.
  response.version = request.version;

  // Per-request server-side budget. The same budget bounds the wait on the
  // scheduler thread; an expired deadline is reported, not worked through.
  Deadline deadline = Deadline::after(options_.request_deadline_seconds);
  auto remaining_seconds = [&]() -> double {
    int ms = deadline.remaining_ms();
    return ms < 0 ? -1.0 : static_cast<double>(ms) / 1000.0;
  };
  if (deadline.expired()) {
    response.status = RpcStatus::DeadlineExpired;
    response.error = "request budget exhausted before dispatch";
    return response;
  }

  WireWriter body;
  WireReader reader(request.body);
  switch (request.type) {
    case MessageType::SubmitJob: {
      TraceJob job;
      if (!decode_trace_job(reader, job) || !reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "malformed SubmitJob body";
        return response;
      }
      SubmitOutcome outcome;
      if (!service_->submit(job, outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      if (outcome.error == SubmitError::Draining) {
        response.status = RpcStatus::Draining;
        response.error = "service is draining; admissions stopped";
        return response;
      }
      if (outcome.error == SubmitError::Invalid) {
        response.status = RpcStatus::InvalidJob;
        response.error = "job shape rejected (processes in [1, " +
                         std::to_string(service_->total_cores()) +
                         "], work > 0)";
        return response;
      }
      SubmitJobResponse reply;
      reply.job_id = outcome.job_id;
      reply.virtual_now = outcome.virtual_now;
      reply.status = outcome.status;
      reply.shard_id = options_.shard_id;
      encode_submit_response(body, reply, request.version);
      break;
    }
    case MessageType::QueryJobStatus: {
      std::int64_t job_id = reader.i64();
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "malformed QueryJobStatus body";
        return response;
      }
      StatusOutcome outcome;
      if (!service_->job_status(job_id, outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      if (!outcome.found) {
        response.status = RpcStatus::UnknownJob;
        response.error = "no job with id " + std::to_string(job_id);
        return response;
      }
      JobStatusResponse reply;
      reply.found = true;
      reply.virtual_now = outcome.virtual_now;
      reply.status = outcome.status;
      encode_status_response(body, reply);
      break;
    }
    case MessageType::QueryJobTimeline: {
      if (request.version < 7) {
        response.status = RpcStatus::BadRequest;
        response.error = "QueryJobTimeline requires protocol v7";
        return response;
      }
      std::int64_t job_id = reader.i64();
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "malformed QueryJobTimeline body";
        return response;
      }
      TimelineOutcome outcome;
      if (!service_->job_timeline(job_id, outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      if (!outcome.found) {
        response.status = RpcStatus::UnknownJob;
        response.error = "no job with id " + std::to_string(job_id);
        return response;
      }
      JobTimelineResponse reply;
      reply.job_id = job_id;
      reply.found = true;
      reply.truncated = outcome.timeline.truncated;
      reply.virtual_now = outcome.virtual_now;
      reply.events = std::move(outcome.timeline.events);
      encode_timeline_response(body, reply);
      break;
    }
    case MessageType::GetAlerts: {
      if (request.version < 8) {
        response.status = RpcStatus::BadRequest;
        response.error = "GetAlerts requires protocol v8";
        return response;
      }
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected GetAlerts body";
        return response;
      }
      AlertsResponse reply;
      reply.engine_enabled = alerts_ != nullptr;
      if (alerts_) {
        for (const AlertView& view : alerts_->views()) {
          AlertEntry entry;
          entry.shard_id = options_.shard_id;
          entry.rule = view.rule;
          entry.state = static_cast<std::uint8_t>(view.state);
          entry.severity = static_cast<std::uint8_t>(view.severity);
          entry.value = view.value;
          entry.threshold = view.threshold;
          entry.since_seconds = view.since_seconds;
          entry.detail = view.detail;
          if (view.state == AlertState::Firing) ++reply.firing;
          reply.alerts.push_back(std::move(entry));
        }
      }
      encode_alerts_response(body, reply);
      break;
    }
    case MessageType::QueryScheduleSnapshot: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected QueryScheduleSnapshot body";
        return response;
      }
      ServiceSnapshot snapshot;
      if (!service_->snapshot(snapshot, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      encode_service_snapshot(body, snapshot);
      break;
    }
    case MessageType::GetMetrics: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected GetMetrics body";
        return response;
      }
      MetricsOutcome outcome;
      if (!service_->metrics(outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      MetricsResponse reply;
      reply.virtual_now = outcome.virtual_now;
      reply.arrivals = outcome.arrivals;
      reply.admissions = outcome.admissions;
      reply.completions = outcome.completions;
      reply.replans = outcome.replans;
      reply.migrations = outcome.migrations;
      reply.running_mean_degradation = outcome.running_mean_degradation;
      reply.cache = outcome.cache;
      reply.deterministic_csv = outcome.deterministic_csv;
      if (request.version >= 2) {
        MetricsRegistry& reg = MetricsRegistry::global();
        reply.astar_searches =
            reg.counter("cosched_astar_searches_total", "graph searches run")
                .value();
        reply.astar_expansions =
            reg.counter("cosched_astar_expansions_total",
                        "subpaths expanded")
                .value();
        reply.astar_heuristic_evals =
            reg.counter("cosched_astar_heuristic_evals_total",
                        "h(v) evaluations")
                .value();
        ServerStats snapshot = stats();
        reply.rpc_requests_ok = snapshot.requests_ok;
        reply.rpc_requests_failed = snapshot.requests_failed;
        if (request_latency_) {
          Histogram latency = request_latency_->snapshot();
          reply.rpc_request_count = latency.count();
          reply.rpc_request_seconds_sum = latency.sum();
          reply.rpc_request_seconds_p99 = latency.quantile(0.99);
        }
      }
      if (request.version >= 3) {
        if (queue_wait_metric_) {
          Histogram queue_wait = queue_wait_metric_->snapshot();
          reply.queue_wait_count = queue_wait.count();
          reply.queue_wait_seconds_sum = queue_wait.sum();
          reply.queue_wait_seconds_p99 = queue_wait.quantile(0.99);
        }
        reply.tracer_dropped_events = Tracer::global().dropped_events();
      }
      if (request.version >= 4) {
        TailSampler& tail = TailSampler::global();
        TailSamplerStats tail_stats = tail.stats();
        reply.tail_considered = tail_stats.considered;
        reply.tail_kept = tail_stats.kept();
        reply.tail_dropped = tail_stats.dropped;
        reply.tail_pending = tail.pending();
        reply.tail_retained_spans = tail.retained();
        if (request_latency_) {
          Histogram latency = request_latency_->snapshot();
          const Exemplar* newest = nullptr;
          for (const Exemplar& exemplar : latency.exemplars())
            if (exemplar.valid && (!newest || exemplar.seq > newest->seq))
              newest = &exemplar;
          if (newest) {
            reply.latency_exemplar_trace_id = newest->trace_id;
            reply.latency_exemplar_seconds = newest->value;
          }
        }
      }
      if (request.version >= 5) {
        // Shard/fan-in block of a single instance: its identity and its
        // spillover signals. A standalone server fronts no shards, so the
        // per-shard list stays empty and the router accounting zero.
        reply.shard_id = options_.shard_id;
        LoadProbe probe = service_->load();
        reply.command_queue_depth = probe.queue_depth;
        reply.replan_p95_seconds = probe.replan_p95_seconds;
      }
      encode_metrics_response(body, reply, request.version);
      break;
    }
    case MessageType::TraceDump: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected TraceDump body";
        return response;
      }
      const Tracer& tracer = Tracer::global();
      TraceDumpResponse reply;
      reply.enabled = tracer.enabled();
      reply.event_count = tracer.event_count();
      reply.text = tracer.dump_text();
      reply.chrome_json = tracer.export_chrome_json();
      encode_trace_dump_response(body, reply);
      break;
    }
    case MessageType::Drain: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected Drain body";
        return response;
      }
      DrainOutcome outcome;
      if (!service_->drain(outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "drain did not finish within the budget";
        return response;
      }
      DrainResponse reply;
      reply.completions = outcome.completions;
      reply.virtual_now = outcome.virtual_now;
      encode_drain_response(body, reply);
      break;
    }
    case MessageType::Shutdown: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected Shutdown body";
        return response;
      }
      body.real(0.0);  // virtual_now placeholder when metrics unavailable
      MetricsOutcome outcome;
      if (service_->metrics(outcome, remaining_seconds())) {
        WireWriter fresh;
        fresh.real(outcome.virtual_now);
        body = std::move(fresh);
      }
      break;
    }
    case MessageType::SubscribeTelemetry: {
      // Streamed on the connection level (serve_telemetry); reaching the
      // unary dispatcher means the caller misrouted it.
      response.status = RpcStatus::BadRequest;
      response.error = "SubscribeTelemetry is a streaming request";
      return response;
    }
  }
  response.status = RpcStatus::Ok;
  response.body = body.take();
  return response;
}

}  // namespace cosched
