#include "rpc/server.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace cosched {

CoschedServer::CoschedServer(ServerOptions options)
    : options_(std::move(options)) {
  COSCHED_EXPECTS(options_.worker_threads >= 1);
  COSCHED_EXPECTS(options_.max_connections >= 1);
  service_ = std::make_unique<LiveSchedulerService>(options_.service);
}

CoschedServer::~CoschedServer() { stop(); }

bool CoschedServer::start(std::string& error) {
  NetStatus status = NetStatus::Ok;
  listener_ = Socket::listen_on(options_.host, options_.port,
                                options_.backlog, status);
  if (status != NetStatus::Ok) {
    error = std::string("cannot listen on ") + options_.host + ": " +
            to_string(status);
    return false;
  }
  port_ = listener_.local_port();

  if (options_.enable_http) {
    HttpOptions http_options;
    http_options.host = options_.host;
    http_options.port = options_.http_port;
    http_ = std::make_unique<HttpEndpoint>(http_options);
    http_->handle("/metrics", [](const std::string&, std::string& body,
                                 std::string& content_type) {
      body = MetricsRegistry::global().render_prometheus();
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      return true;
    });
    http_->handle("/healthz", [](const std::string&, std::string& body,
                                 std::string&) {
      body = "ok\n";
      return true;
    });
    if (!http_->start(error)) {
      http_.reset();
      listener_.close();
      return false;
    }
  }
  register_observability();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread(&CoschedServer::accept_main, this);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i)
    workers_.emplace_back(&CoschedServer::worker_main, this);
  return true;
}

void CoschedServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_.wait(lock, [&] {
    return stopping_ || shutdown_requested_.load(std::memory_order_acquire);
  });
}

void CoschedServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  finished_.notify_all();
  // The accept loop and the sessions poll with idle_poll_seconds slices and
  // re-check the stop flag, so joining here is bounded; the listener is only
  // closed once no thread can be inside poll() on it.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  listener_.close();
  if (http_) {
    http_->stop();
    http_.reset();
  }
  unregister_observability();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.clear();
    started_ = false;
  }
  service_->stop();
}

void CoschedServer::register_observability() {
  MetricsRegistry& reg = MetricsRegistry::global();
  request_latency_ = &reg.histogram(
      "cosched_rpc_request_seconds", "RPC request service time",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
       1.0, 2.5});
  auto cb = [&](const char* name, const char* help, const char* type,
                std::function<double()> sample) {
    reg.callback(name, help, type, std::move(sample));
    callback_names_.push_back(name);
  };
  const DegradationCache& cache = service_->oracle_cache();
  cb("cosched_cache_hits_total", "oracle cache hits", "counter",
     [&cache] { return static_cast<double>(cache.stats().hits); });
  cb("cosched_cache_misses_total", "oracle cache misses", "counter",
     [&cache] { return static_cast<double>(cache.stats().misses); });
  cb("cosched_cache_entries", "oracle cache live entries", "gauge",
     [&cache] { return static_cast<double>(cache.stats().entries); });
  cb("cosched_cache_evictions_total",
     "oracle cache entries dropped by compaction", "counter",
     [&cache] { return static_cast<double>(cache.stats().evictions); });
  cb("cosched_cache_compactions_total", "oracle cache compaction passes",
     "counter",
     [&cache] { return static_cast<double>(cache.stats().compactions); });
  cb("cosched_rpc_connections_active", "sessions currently being served",
     "gauge", [this] {
       std::lock_guard<std::mutex> lock(mutex_);
       return static_cast<double>(active_sessions_);
     });
  cb("cosched_rpc_queue_depth", "accepted connections awaiting a worker",
     "gauge", [this] {
       std::lock_guard<std::mutex> lock(mutex_);
       return static_cast<double>(pending_.size());
     });
  cb("cosched_rpc_connections_accepted_total", "connections accepted",
     "counter", [this] {
       return static_cast<double>(stats().accepted_connections);
     });
  cb("cosched_rpc_connections_rejected_total",
     "connections refused at the cap", "counter", [this] {
       return static_cast<double>(stats().rejected_connections);
     });
  cb("cosched_rpc_requests_ok_total", "requests answered Ok", "counter",
     [this] { return static_cast<double>(stats().requests_ok); });
  cb("cosched_rpc_requests_failed_total", "non-Ok responses sent", "counter",
     [this] { return static_cast<double>(stats().requests_failed); });
  cb("cosched_rpc_malformed_frames_total",
     "frames dropped as structurally invalid", "counter",
     [this] { return static_cast<double>(stats().malformed_frames); });
}

void CoschedServer::unregister_observability() {
  MetricsRegistry& reg = MetricsRegistry::global();
  for (const std::string& name : callback_names_)
    reg.unregister_callback(name);
  callback_names_.clear();
  // The latency histogram stays registered (its samples outlive the server;
  // nothing it references dies with us).
}

ServerStats CoschedServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void CoschedServer::accept_main() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    NetStatus status = NetStatus::Ok;
    Socket conn = listener_.accept_connection(
        Deadline::after(options_.idle_poll_seconds), status);
    if (status == NetStatus::Timeout) continue;
    if (status != NetStatus::Ok) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;  // listener closed by stop()
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    if (pending_.size() + active_sessions_ >= options_.max_connections) {
      // At the cap: refuse by closing. The client sees a clean EOF before
      // any response and reports a transport error it may retry later.
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected_connections;
      continue;  // `conn` closes as it goes out of scope
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.accepted_connections;
    }
    pending_.push_back(std::move(conn));
    wake_.notify_one();
  }
}

void CoschedServer::worker_main() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      ++active_sessions_;
    }
    serve_connection(std::move(conn));
    std::lock_guard<std::mutex> lock(mutex_);
    --active_sessions_;
  }
}

void CoschedServer::serve_connection(Socket socket) {
  std::vector<std::uint8_t> payload;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    FrameStatus frame_status =
        read_frame(socket, payload, Deadline::after(options_.idle_poll_seconds),
                   options_.max_frame_bytes);
    if (frame_status == FrameStatus::Timeout) continue;  // idle connection
    if (frame_status == FrameStatus::Closed) return;     // clean disconnect
    if (frame_status != FrameStatus::Ok) {
      // Truncated / BadMagic / Oversized: the stream is unusable; count it
      // and drop the connection.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
      return;
    }

    WallTimer request_timer;
    RequestEnvelope request;
    ResponseEnvelope response;
    if (!decode_request(payload, request)) {
      response.status = RpcStatus::BadRequest;
      response.error = "malformed request envelope";
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    } else {
      COSCHED_TRACE_SPAN(request_span, "rpc.request");
      response = handle_request(request);
    }

    std::vector<std::uint8_t> bytes = encode_response(response);
    FrameStatus write_status = write_frame(
        socket, bytes, Deadline::after(options_.request_deadline_seconds +
                                       options_.idle_poll_seconds));
    if (request_latency_)
      request_latency_->observe(request_timer.seconds());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.status == RpcStatus::Ok)
        ++stats_.requests_ok;
      else
        ++stats_.requests_failed;
    }
    if (write_status != FrameStatus::Ok) return;  // peer went away mid-reply
    if (response.status == RpcStatus::Ok &&
        response.type == MessageType::Shutdown) {
      // Acknowledged; trip the latch after the reply is on the wire.
      shutdown_requested_.store(true, std::memory_order_release);
      finished_.notify_all();
      return;
    }
  }
}

ResponseEnvelope CoschedServer::handle_request(const RequestEnvelope& request) {
  ResponseEnvelope response;
  response.type = request.type;
  response.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    response.status = RpcStatus::VersionMismatch;
    response.error = "server speaks protocol versions " +
                     std::to_string(kMinProtocolVersion) + ".." +
                     std::to_string(kProtocolVersion);
    return response;
  }
  // Answer in the requester's version: a v1 peer gets v1 bodies.
  response.version = request.version;

  // Per-request server-side budget. The same budget bounds the wait on the
  // scheduler thread; an expired deadline is reported, not worked through.
  Deadline deadline = Deadline::after(options_.request_deadline_seconds);
  auto remaining_seconds = [&]() -> double {
    int ms = deadline.remaining_ms();
    return ms < 0 ? -1.0 : static_cast<double>(ms) / 1000.0;
  };
  if (deadline.expired()) {
    response.status = RpcStatus::DeadlineExpired;
    response.error = "request budget exhausted before dispatch";
    return response;
  }

  WireWriter body;
  WireReader reader(request.body);
  switch (request.type) {
    case MessageType::SubmitJob: {
      TraceJob job;
      if (!decode_trace_job(reader, job) || !reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "malformed SubmitJob body";
        return response;
      }
      SubmitOutcome outcome;
      if (!service_->submit(job, outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      if (outcome.error == SubmitError::Draining) {
        response.status = RpcStatus::Draining;
        response.error = "service is draining; admissions stopped";
        return response;
      }
      if (outcome.error == SubmitError::Invalid) {
        response.status = RpcStatus::InvalidJob;
        response.error = "job shape rejected (processes in [1, " +
                         std::to_string(service_->total_cores()) +
                         "], work > 0)";
        return response;
      }
      SubmitJobResponse reply;
      reply.job_id = outcome.job_id;
      reply.virtual_now = outcome.virtual_now;
      reply.status = outcome.status;
      encode_submit_response(body, reply);
      break;
    }
    case MessageType::QueryJobStatus: {
      std::int64_t job_id = reader.i64();
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "malformed QueryJobStatus body";
        return response;
      }
      StatusOutcome outcome;
      if (!service_->job_status(job_id, outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      if (!outcome.found) {
        response.status = RpcStatus::UnknownJob;
        response.error = "no job with id " + std::to_string(job_id);
        return response;
      }
      JobStatusResponse reply;
      reply.found = true;
      reply.virtual_now = outcome.virtual_now;
      reply.status = outcome.status;
      encode_status_response(body, reply);
      break;
    }
    case MessageType::QueryScheduleSnapshot: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected QueryScheduleSnapshot body";
        return response;
      }
      ServiceSnapshot snapshot;
      if (!service_->snapshot(snapshot, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      encode_service_snapshot(body, snapshot);
      break;
    }
    case MessageType::GetMetrics: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected GetMetrics body";
        return response;
      }
      MetricsOutcome outcome;
      if (!service_->metrics(outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "scheduler did not answer within the budget";
        return response;
      }
      MetricsResponse reply;
      reply.virtual_now = outcome.virtual_now;
      reply.arrivals = outcome.arrivals;
      reply.admissions = outcome.admissions;
      reply.completions = outcome.completions;
      reply.replans = outcome.replans;
      reply.migrations = outcome.migrations;
      reply.running_mean_degradation = outcome.running_mean_degradation;
      reply.cache = outcome.cache;
      reply.deterministic_csv = outcome.deterministic_csv;
      if (request.version >= 2) {
        MetricsRegistry& reg = MetricsRegistry::global();
        reply.astar_searches =
            reg.counter("cosched_astar_searches_total", "graph searches run")
                .value();
        reply.astar_expansions =
            reg.counter("cosched_astar_expansions_total",
                        "subpaths expanded")
                .value();
        reply.astar_heuristic_evals =
            reg.counter("cosched_astar_heuristic_evals_total",
                        "h(v) evaluations")
                .value();
        ServerStats snapshot = stats();
        reply.rpc_requests_ok = snapshot.requests_ok;
        reply.rpc_requests_failed = snapshot.requests_failed;
        if (request_latency_) {
          Histogram latency = request_latency_->snapshot();
          reply.rpc_request_count = latency.count();
          reply.rpc_request_seconds_sum = latency.sum();
          reply.rpc_request_seconds_p99 = latency.quantile(0.99);
        }
      }
      encode_metrics_response(body, reply, request.version);
      break;
    }
    case MessageType::TraceDump: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected TraceDump body";
        return response;
      }
      const Tracer& tracer = Tracer::global();
      TraceDumpResponse reply;
      reply.enabled = tracer.enabled();
      reply.event_count = tracer.event_count();
      reply.text = tracer.dump_text();
      reply.chrome_json = tracer.export_chrome_json();
      encode_trace_dump_response(body, reply);
      break;
    }
    case MessageType::Drain: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected Drain body";
        return response;
      }
      DrainOutcome outcome;
      if (!service_->drain(outcome, remaining_seconds())) {
        response.status = RpcStatus::DeadlineExpired;
        response.error = "drain did not finish within the budget";
        return response;
      }
      DrainResponse reply;
      reply.completions = outcome.completions;
      reply.virtual_now = outcome.virtual_now;
      encode_drain_response(body, reply);
      break;
    }
    case MessageType::Shutdown: {
      if (!reader.complete()) {
        response.status = RpcStatus::BadRequest;
        response.error = "unexpected Shutdown body";
        return response;
      }
      body.real(0.0);  // virtual_now placeholder when metrics unavailable
      MetricsOutcome outcome;
      if (service_->metrics(outcome, remaining_seconds())) {
        WireWriter fresh;
        fresh.real(outcome.virtual_now);
        body = std::move(fresh);
      }
      break;
    }
  }
  response.status = RpcStatus::Ok;
  response.body = body.take();
  return response;
}

}  // namespace cosched
