// CoschedServer — TCP front door of the online co-scheduling service.
//
// Threading model (see DESIGN.md §net/rpc):
//
//   accept thread ──> connection queue ──> N session workers
//                                             │  (frame <-> envelope)
//                                             v
//                                     LiveSchedulerService
//                                     (1 scheduler thread, FIFO commands)
//
// The accept loop is non-blocking and enforces the connection cap: when
// `max_connections` sessions are active, new connections are closed
// immediately (counted in stats().rejected_connections) instead of queueing
// unbounded work. Each worker owns one connection at a time and serves its
// requests sequentially; every request gets a fresh server-side deadline
// (`request_deadline_seconds`), checked before dispatch and used as the
// timeout of the scheduler-thread command — an expired budget turns into an
// RpcStatus::DeadlineExpired response, never a stuck worker.
//
// Shutdown paths: an RPC Shutdown request acknowledges, then trips the same
// latch as stop(); wait() blocks until either fires. Drain is forwarded to
// the service — admissions stop, queued jobs finish, the fleet empties.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/alerts.hpp"
#include "obs/http.hpp"
#include "obs/metrics_registry.hpp"
#include "online/live_service.hpp"
#include "rpc/protocol.hpp"

namespace cosched {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  int backlog = 16;
  std::size_t worker_threads = 2;
  /// Connection cap: sessions beyond this are refused at accept time.
  std::size_t max_connections = 32;
  /// Server-side budget per request, seconds. <= 0 expires immediately
  /// (useful only for testing the DeadlineExpired path).
  double request_deadline_seconds = 10.0;
  /// How long a worker blocks waiting for the next frame before re-checking
  /// the stop flag. Purely a responsiveness knob.
  double idle_poll_seconds = 0.2;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Observability side door: a second listening port serving GET /metrics
  /// (Prometheus text format) and GET /healthz over HTTP/1.0.
  bool enable_http = true;
  std::uint16_t http_port = 0;  ///< 0 = ephemeral; read back with http_port()
  /// Shard identity advertised on v5 wires (SubmitJob acks and the
  /// GetMetrics shard block). -1 = standalone server; a shard router's
  /// RPC-addressable backend is a plain CoschedServer started with its
  /// shard id set.
  std::int32_t shard_id = -1;
  /// SLO watchdog: scrape the process registry into the embedded tsdb and
  /// evaluate alert rules on a background tick (obs/alerts.hpp). When
  /// `alerts.rules` is empty the server installs default_alert_rules()
  /// against `alert_budget_ms`. Compiled out under COSCHED_ALERTS_DISABLED
  /// regardless of this switch.
  bool enable_alerts = true;
  AlertEngineOptions alerts;
  /// Latency budget (ms) behind the default burn-rate rules; slo.json's
  /// p95_ms is the natural source.
  double alert_budget_ms = 900.0;
  LiveServiceOptions service;
};

struct ServerStats {
  std::uint64_t accepted_connections = 0;
  std::uint64_t rejected_connections = 0;  ///< closed at the cap
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;  ///< non-Ok responses sent
  std::uint64_t malformed_frames = 0;  ///< bad magic / oversized / truncated
  std::uint64_t telemetry_frames = 0;  ///< SubscribeTelemetry frames pushed
  std::uint64_t telemetry_dropped_spans = 0;  ///< shed by backpressure
};

class CoschedServer {
 public:
  explicit CoschedServer(ServerOptions options);
  ~CoschedServer();

  CoschedServer(const CoschedServer&) = delete;
  CoschedServer& operator=(const CoschedServer&) = delete;

  /// Binds the listener and launches the accept loop + workers. False (with
  /// `error` filled) when the address cannot be bound.
  bool start(std::string& error);

  /// Port actually bound (after start()).
  std::uint16_t port() const { return port_; }

  /// HTTP observability port actually bound (after start(); 0 when
  /// enable_http is off).
  std::uint16_t http_port() const { return http_ ? http_->port() : 0; }

  /// Blocks until stop() is called or an RPC Shutdown arrives.
  void wait();

  /// True once a Shutdown request has been received.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Stops accepting, unblocks workers, joins all threads. Idempotent.
  void stop();

  LiveSchedulerService& service() { return *service_; }
  /// The SLO watchdog (nullptr when disabled or compiled out).
  AlertEngine* alert_engine() { return alerts_.get(); }
  ServerStats stats() const;

 private:
  void accept_main();
  void worker_main();
  void serve_connection(Socket socket);
  /// Decodes, dispatches and encodes one request.
  ResponseEnvelope handle_request(const RequestEnvelope& request);
  /// Turns the connection into a server-push telemetry stream (v3
  /// SubscribeTelemetry); returns when the subscriber leaves, max_frames is
  /// reached or the server stops.
  void serve_telemetry(Socket& socket, const RequestEnvelope& request);
  /// Deterministic nonzero trace id for requests that did not bring one.
  std::uint64_t next_server_trace_id();
  /// Registers the callback metrics bridging server/cache state into the
  /// process registry; unregister_observability() drops them (stop()).
  void register_observability();
  void unregister_observability();

  ServerOptions options_;
  std::unique_ptr<LiveSchedulerService> service_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<HttpEndpoint> http_;
  std::unique_ptr<AlertEngine> alerts_;
  /// Cached at start(): workers observe without touching the registry map
  /// (whose mutex the /metrics render holds while sampling callbacks).
  HistogramMetric* request_latency_ = nullptr;
  HistogramMetric* queue_wait_metric_ = nullptr;
  std::vector<std::string> callback_names_;

  std::mutex mutex_;
  std::condition_variable wake_;      ///< workers: connection queue
  std::condition_variable finished_;  ///< wait(): shutdown latch
  std::deque<Socket> pending_;
  std::size_t active_sessions_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> trace_id_counter_{0};
  std::atomic<std::int64_t> telemetry_subscribers_{0};

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace cosched
