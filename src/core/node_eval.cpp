#include "core/node_eval.hpp"

namespace cosched {

Real NodeEvaluator::weight(std::span<const ProcessId> node,
                           std::vector<Real>& d_out) const {
  d_out.clear();
  Real total = 0.0;
  // Stack buffer for co-runners; u is small (2..8 in the paper).
  ProcessId co[16];
  COSCHED_EXPECTS(node.size() <= 16);
  for (std::size_t i = 0; i < node.size(); ++i) {
    std::size_t c = 0;
    for (std::size_t j = 0; j < node.size(); ++j)
      if (j != i) co[c++] = node[j];
    Real d = model_->degradation(node[i], std::span<const ProcessId>(co, c));
    d_out.push_back(d);
    total += d;
  }
  return total;
}

Real NodeEvaluator::weight(std::span<const ProcessId> node) const {
  thread_local std::vector<Real> scratch;
  return weight(node, scratch);
}

Real NodeEvaluator::h_weight(std::span<const ProcessId> node,
                             HWeightMode mode) const {
  thread_local std::vector<Real> scratch;
  Real full = weight(node, scratch);
  if (mode == HWeightMode::PaperFull) return full;
  // Admissible: drop parallel processes' contributions.
  Real w = full;
  for (std::size_t i = 0; i < node.size(); ++i)
    if (problem_->batch.is_parallel_process(node[i])) w -= scratch[i];
  return w;
}

}  // namespace cosched
