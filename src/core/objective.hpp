// Solutions and objective evaluation (Eq. 6 / Eq. 13).
#pragma once

#include <string>
#include <vector>

#include "core/degradation_model.hpp"
#include "core/problem.hpp"

namespace cosched {

/// How per-process degradations aggregate into the objective.
enum class Aggregation {
  /// Treat every process as serial: Σ_i d_i (Eq. 2 / Eq. 12). This is the
  /// OA*-SE objective of the paper's Section V-B.
  SumAllProcesses,
  /// Serial processes sum; each parallel job contributes its max (Eq. 6 /
  /// Eq. 13). The correct objective for PE and PC jobs.
  MaxPerParallelJob,
};

/// A co-schedule: `machines[m]` lists the u processes placed on machine m.
struct Solution {
  std::vector<std::vector<ProcessId>> machines;

  /// Sorts processes within machines and machines by first process.
  void canonicalize();

  /// Index of the machine hosting process p, or -1.
  std::int32_t machine_of(ProcessId p) const;

  std::string to_string(const JobBatch& batch) const;
};

struct Evaluation {
  Real total = 0.0;
  std::vector<Real> per_process;  ///< d_i of every process (incl. imaginary)
  std::vector<Real> per_job;      ///< aggregated contribution per job
  /// Average over *real* jobs (the paper reports average degradation).
  Real average_per_job = 0.0;
};

/// Throws ContractViolation if `s` is not a valid partition of the problem's
/// processes into machines of exactly u processes each.
void validate_solution(const Problem& problem, const Solution& s);

/// Evaluates `s` under `model` and the given aggregation. `s` must be valid.
Evaluation evaluate_solution(const Problem& problem, const Solution& s,
                             const DegradationModel& model,
                             Aggregation aggregation);

/// Shorthand: full model + MaxPerParallelJob (the paper's objective).
Evaluation evaluate_solution(const Problem& problem, const Solution& s);

}  // namespace cosched
