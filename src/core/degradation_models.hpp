// Concrete degradation models.
//
//  * TabularDegradationModel   — explicit d(i,S) entries; unit tests and
//                                hand-crafted instances.
//  * SyntheticDegradationModel — closed-form model driven by per-process
//                                miss rates; the paper's "synthetic jobs"
//                                (miss rate uniform in [15%, 75%]).
//  * SdcDegradationModel       — the paper's Section V pipeline: solo SDPs →
//                                SDC competition → co-run misses → Eq. 14/15
//                                CPU times → Eq. 1 degradation. Memoized.
//  * CommAwareDegradationModel — decorator adding c(i,S)/ct_i (Eq. 9) for
//                                PC processes on top of any base model.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/machine_config.hpp"
#include "cache/stack_distance.hpp"
#include "cache/cpu_time_model.hpp"
#include "comm/comm_topology.hpp"
#include "core/degradation_model.hpp"
#include "util/rng.hpp"

namespace cosched {

/// Explicit table of degradations; unspecified entries default to 0.
class TabularDegradationModel final : public DegradationModel {
 public:
  explicit TabularDegradationModel(std::int32_t num_processes);

  /// Sets d(i, co). `co` is copied and sorted; order does not matter.
  void set(ProcessId i, std::vector<ProcessId> co, Real d);

  /// Sets the heuristic pressure surrogate of process i.
  void set_pressure(ProcessId i, Real pressure);
  void set_solo_time(ProcessId i, Real t);

  Real degradation(ProcessId i, std::span<const ProcessId> co) const override;
  Real solo_time(ProcessId i) const override;
  Real pressure(ProcessId i) const override;

 private:
  std::int32_t n_;
  std::map<std::pair<ProcessId, std::vector<ProcessId>>, Real> table_;
  std::vector<Real> pressure_;
  std::vector<Real> solo_time_;
};

/// Closed-form contention model from per-process miss rates:
///   d(i,S) = s_i * Π² / (Π² + K) * C,  Π = Σ_{k∈S} r_k
/// An S-curve in combined co-runner pressure (fits-in-cache threshold, then
/// saturation); monotone in pressure and in the process's own sensitivity;
/// zero for imaginary processes (marked by r_i = 0).
///
/// The sensitivity s_i (how much the process suffers) is independent of the
/// pressure r_i (how much it inflicts): real programs span all four
/// quadrants — streaming kernels thrash the cache yet barely care, pointer
/// chasers are fragile but light. This two-dimensionality is what a scalar
/// politeness ordering (the PG baseline) cannot capture. When no
/// sensitivities are supplied, s_i = 0.3 + r_i (the one-dimensional
/// special case).
/// Response shape of the synthetic model in normalized pressure x = Π/C.
enum class SyntheticLandscape {
  /// x⁴/(x⁴+1): sharp fits-in-cache threshold. Hard packing instances —
  /// scalar heuristics (politeness) lose real margins here.
  Threshold,
  /// x/(x+1): concave diminishing returns. Every co-runner hurts some —
  /// level minima stay positive, so admissible h(v) bounds prune well.
  Smooth,
  /// c·x: bilinear in (own rate × co-runner pressure). The total objective
  /// is then Σ_machines (S_m² − Q_m)/2-shaped (balanced sums optimal).
  /// Explored as a candidate explanation for the paper's Fig. 5 / Fig. 9
  /// statistics; in practice its near-degenerate optima plateau the search
  /// instead (see EXPERIMENTS.md F2). Kept for experimentation.
  Bilinear,
};

class SyntheticDegradationModel final : public DegradationModel {
 public:
  /// miss_rates[i] in [0,1]; 0 marks an imaginary / inert process.
  explicit SyntheticDegradationModel(std::vector<Real> miss_rates);

  /// Two-dimensional variant with explicit per-process sensitivities.
  /// `capacity` is the combined co-runner pressure at the S-curve midpoint
  /// — the "working sets fill the shared cache" point. Larger machines
  /// (more cores, bigger shared cache) absorb more combined pressure, so
  /// builders scale it with u-1; the default matches a quad-core machine.
  SyntheticDegradationModel(
      std::vector<Real> miss_rates, std::vector<Real> sensitivities,
      Real capacity = 1.35,
      SyntheticLandscape landscape = SyntheticLandscape::Threshold);

  /// n processes with miss rates uniform in [lo, hi] (paper: [0.15, 0.75])
  /// and independent sensitivities uniform in [0.2, 1.2].
  static std::shared_ptr<SyntheticDegradationModel> random(
      std::int32_t num_processes, Rng& rng, Real lo = 0.15, Real hi = 0.75);

  Real miss_rate(ProcessId i) const {
    COSCHED_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < rates_.size());
    return rates_[static_cast<std::size_t>(i)];
  }
  Real sensitivity(ProcessId i) const {
    COSCHED_EXPECTS(i >= 0 &&
                    static_cast<std::size_t>(i) < sensitivities_.size());
    return sensitivities_[static_cast<std::size_t>(i)];
  }
  Real capacity() const { return capacity_; }

  Real degradation(ProcessId i, std::span<const ProcessId> co) const override;
  Real pressure(ProcessId i) const override;

 private:
  std::vector<Real> rates_;
  std::vector<Real> sensitivities_;
  Real capacity_ = 1.35;  ///< co-runner pressure at the curve's midpoint
  SyntheticLandscape landscape_ = SyntheticLandscape::Threshold;
  static constexpr Real kScale = 0.5;
};

/// SDC-backed model: each process carries a characterized program (solo SDP
/// + timing); co-run degradation is predicted with the SDC competition.
class SdcDegradationModel final : public DegradationModel {
 public:
  struct ProcessProgram {
    StackDistanceProfile sdp;
    ProgramTiming timing;
    Real solo_time_seconds = 1.0;
    Real solo_miss_rate = 0.0;
  };

  /// programs[i] characterizes process i; a default-constructed entry (empty
  /// SDP) marks an imaginary process.
  SdcDegradationModel(MachineConfig machine,
                      std::vector<ProcessProgram> programs);

  Real degradation(ProcessId i, std::span<const ProcessId> co) const override;
  Real solo_time(ProcessId i) const override;
  Real pressure(ProcessId i) const override;

 private:
  bool is_inert(ProcessId i) const {
    return programs_[static_cast<std::size_t>(i)].sdp.associativity() == 0;
  }

  MachineConfig machine_;
  std::vector<ProcessProgram> programs_;
  // Memoization: key = i then sorted co ids, packed into a string of i32.
  mutable std::unordered_map<std::string, Real> memo_;
};

/// Decorator adding the Eq. 9 communication term for PC processes.
class CommAwareDegradationModel final : public DegradationModel {
 public:
  CommAwareDegradationModel(DegradationModelPtr base,
                            std::shared_ptr<const CommTopology> topology,
                            Real bandwidth_bytes_per_s);

  Real degradation(ProcessId i, std::span<const ProcessId> co) const override;
  Real solo_time(ProcessId i) const override { return base_->solo_time(i); }
  Real pressure(ProcessId i) const override { return base_->pressure(i); }

 private:
  DegradationModelPtr base_;
  std::shared_ptr<const CommTopology> topology_;
  Real bandwidth_;
};

}  // namespace cosched
