// DegradationModel: the oracle d(i, S) every scheduler in this library
// consumes.
//
// `degradation(i, co)` returns the (communication-combined, if the model
// includes communication) degradation process i suffers when co-scheduled
// with the processes in `co` on one machine (Eq. 1 / Eq. 9). `co` excludes
// i itself and holds at most u-1 ids; imaginary padding processes may appear
// and must contribute nothing.
//
// Models are immutable after construction and therefore freely shared by
// const reference across searches. Implementations may memoize internally
// (single-threaded use per search; see SdcDegradationModel).
#pragma once

#include <memory>
#include <span>

#include "util/common.hpp"

namespace cosched {

class DegradationModel {
 public:
  virtual ~DegradationModel() = default;

  /// d(i, S): degradation of process i when co-running with `co`.
  /// Must be >= 0 and 0 whenever i is an imaginary process.
  virtual Real degradation(ProcessId i,
                           std::span<const ProcessId> co) const = 0;

  /// Solo execution time ct_i (seconds or normalized units); used to convert
  /// communication time into a degradation fraction (Eq. 9).
  virtual Real solo_time(ProcessId /*i*/) const { return 1.0; }

  /// Scalar cache-pressure surrogate (e.g. solo miss rate). Heuristics use
  /// it for candidate ordering only; correctness never depends on it.
  virtual Real pressure(ProcessId /*i*/) const { return 0.0; }
};

using DegradationModelPtr = std::shared_ptr<const DegradationModel>;

}  // namespace cosched
