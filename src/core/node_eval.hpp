// NodeEvaluator: weight of a co-scheduling-graph node.
//
// A node is a set of u processes placed on one machine; its weight is the
// total degradation of those processes (paper Section III-A). The search
// additionally needs the per-process degradations (to maintain per-parallel-
// job maxima) and an "h-weight" — the node's contribution usable inside an
// admissible heuristic (parallel processes may legitimately contribute 0 to
// the path distance when their job's max lies elsewhere).
#pragma once

#include <span>
#include <vector>

#include "core/degradation_model.hpp"
#include "core/problem.hpp"

namespace cosched {

/// How h(v) accounts for parallel processes inside candidate nodes.
enum class HWeightMode {
  /// Parallel processes count 0: provably admissible (DESIGN.md §3).
  Admissible,
  /// Parallel processes count their full d, as the paper describes. Tighter,
  /// not admissible in general when parallel jobs are present.
  PaperFull,
};

class NodeEvaluator {
 public:
  NodeEvaluator(const Problem& problem, const DegradationModel& model)
      : problem_(&problem), model_(&model) {}

  const Problem& problem() const { return *problem_; }
  const DegradationModel& model() const { return *model_; }

  /// Per-process degradations of `node`'s members (in member order) written
  /// into `d_out`; returns the node weight Σ d.
  Real weight(std::span<const ProcessId> node, std::vector<Real>& d_out) const;

  /// Node weight only.
  Real weight(std::span<const ProcessId> node) const;

  /// Weight for heuristic purposes under `mode`.
  Real h_weight(std::span<const ProcessId> node, HWeightMode mode) const;

 private:
  const Problem* problem_;
  const DegradationModel* model_;
};

}  // namespace cosched
