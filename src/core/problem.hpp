// Problem: one co-scheduling instance — the batch, the machine type, and the
// degradation models the schedulers query.
#pragma once

#include <memory>

#include "cache/machine_config.hpp"
#include "comm/comm_topology.hpp"
#include "core/degradation_model.hpp"
#include "workload/job_batch.hpp"

namespace cosched {

struct Problem {
  MachineConfig machine;  ///< machine.cores is u
  JobBatch batch;         ///< already padded: process_count() % u == 0

  /// Contention-only model (Eq. 1); used by OA*-SE / OA*-PE variants.
  DegradationModelPtr contention_model;
  /// Full model incl. communication for PC jobs (Eq. 9). Equals
  /// contention_model when the batch has no PC jobs.
  DegradationModelPtr full_model;
  /// Communication topology; null when the batch has no PC jobs.
  std::shared_ptr<const CommTopology> topology;

  std::int32_t u() const { return static_cast<std::int32_t>(machine.cores); }
  std::int32_t n() const { return batch.process_count(); }
  std::int32_t machine_count() const {
    COSCHED_EXPECTS(n() % u() == 0);
    return n() / u();
  }

  /// Validates internal consistency; throws ContractViolation on error.
  void check() const {
    COSCHED_EXPECTS(u() >= 1);
    COSCHED_EXPECTS(n() >= 1);
    COSCHED_EXPECTS(n() % u() == 0);
    COSCHED_EXPECTS(contention_model != nullptr);
    COSCHED_EXPECTS(full_model != nullptr);
  }
};

}  // namespace cosched
