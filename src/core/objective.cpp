#include "core/objective.hpp"

#include <algorithm>
#include <sstream>

namespace cosched {

void Solution::canonicalize() {
  for (auto& m : machines) std::sort(m.begin(), m.end());
  std::sort(machines.begin(), machines.end(),
            [](const auto& a, const auto& b) {
              if (a.empty() || b.empty()) return a.size() < b.size();
              return a[0] < b[0];
            });
}

std::int32_t Solution::machine_of(ProcessId p) const {
  for (std::size_t m = 0; m < machines.size(); ++m)
    for (ProcessId q : machines[m])
      if (q == p) return static_cast<std::int32_t>(m);
  return -1;
}

std::string Solution::to_string(const JobBatch& batch) const {
  std::ostringstream os;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    os << "machine" << m << ": [";
    for (std::size_t k = 0; k < machines[m].size(); ++k) {
      if (k) os << ", ";
      os << batch.process_label(machines[m][k]);
    }
    os << "]\n";
  }
  return os.str();
}

void validate_solution(const Problem& problem, const Solution& s) {
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  COSCHED_EXPECTS(static_cast<std::int32_t>(s.machines.size()) ==
                  problem.machine_count());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const auto& m : s.machines) {
    COSCHED_EXPECTS(static_cast<std::int32_t>(m.size()) == u);
    for (ProcessId p : m) {
      COSCHED_EXPECTS(p >= 0 && p < n);
      COSCHED_EXPECTS(!seen[static_cast<std::size_t>(p)]);
      seen[static_cast<std::size_t>(p)] = true;
    }
  }
}

Evaluation evaluate_solution(const Problem& problem, const Solution& s,
                             const DegradationModel& model,
                             Aggregation aggregation) {
  validate_solution(problem, s);
  const JobBatch& batch = problem.batch;

  Evaluation ev;
  ev.per_process.assign(static_cast<std::size_t>(problem.n()), 0.0);
  ev.per_job.assign(static_cast<std::size_t>(batch.job_count()), 0.0);

  std::vector<ProcessId> co;
  co.reserve(static_cast<std::size_t>(problem.u() - 1));
  for (const auto& m : s.machines) {
    for (ProcessId p : m) {
      co.clear();
      for (ProcessId q : m)
        if (q != p) co.push_back(q);
      ev.per_process[static_cast<std::size_t>(p)] =
          model.degradation(p, co);
    }
  }

  for (const Job& job : batch.jobs()) {
    Real contrib = 0.0;
    if (job.kind == JobKind::Imaginary) {
      contrib = 0.0;
    } else if (aggregation == Aggregation::MaxPerParallelJob &&
               job.is_parallel()) {
      for (ProcessId p : job.processes)
        contrib = std::max(contrib,
                           ev.per_process[static_cast<std::size_t>(p)]);
    } else {
      for (ProcessId p : job.processes)
        contrib += ev.per_process[static_cast<std::size_t>(p)];
    }
    ev.per_job[static_cast<std::size_t>(job.id)] = contrib;
    ev.total += contrib;
  }

  std::int32_t real_jobs = 0;
  for (const Job& job : batch.jobs())
    if (job.kind != JobKind::Imaginary) ++real_jobs;
  ev.average_per_job =
      real_jobs > 0 ? ev.total / static_cast<Real>(real_jobs) : 0.0;
  return ev;
}

Evaluation evaluate_solution(const Problem& problem, const Solution& s) {
  return evaluate_solution(problem, s, *problem.full_model,
                           Aggregation::MaxPerParallelJob);
}

}  // namespace cosched
