// Snapshot accessors: per-machine / per-process views of an evaluated
// placement.
//
// The solvers and the online service both end up needing the same readout —
// "given this Problem and this Solution, what does every process suffer and
// what does the placement cost" — in a shape that can be rendered, compared
// or serialized over the RPC front-end. snapshot_schedule() computes it
// once via evaluate_solution (Eq. 6/13), so callers stop re-deriving
// per-process degradations with hand-rolled co-runner loops.
#pragma once

#include <vector>

#include "core/objective.hpp"
#include "core/problem.hpp"

namespace cosched {

struct MachineSnapshot {
  std::vector<ProcessId> processes;  ///< local process ids, placement order
  std::vector<Real> degradation;     ///< d_i of each, same order
  Real degradation_sum = 0.0;        ///< Σ over the machine's processes
};

struct ScheduleSnapshot {
  std::vector<MachineSnapshot> machines;
  std::vector<Real> per_process;  ///< d_i indexed by local process id
  Real objective = 0.0;           ///< Eq. 6/13 total of the placement
  /// Mean d_i over *real* (non-imaginary) processes.
  Real mean_real_degradation = 0.0;
};

/// Evaluates `solution` under the problem's full model (Eq. 6/13) and
/// breaks the result out per machine and per process. `solution` must be a
/// valid partition (throws ContractViolation otherwise).
ScheduleSnapshot snapshot_schedule(const Problem& problem,
                                   const Solution& solution);

}  // namespace cosched
