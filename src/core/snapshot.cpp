#include "core/snapshot.hpp"

namespace cosched {

ScheduleSnapshot snapshot_schedule(const Problem& problem,
                                   const Solution& solution) {
  Evaluation eval = evaluate_solution(problem, solution);

  ScheduleSnapshot snap;
  snap.per_process = std::move(eval.per_process);
  snap.objective = eval.total;
  snap.machines.reserve(solution.machines.size());
  for (const auto& machine : solution.machines) {
    MachineSnapshot m;
    m.processes = machine;
    m.degradation.reserve(machine.size());
    for (ProcessId p : machine) {
      Real d = snap.per_process[static_cast<std::size_t>(p)];
      m.degradation.push_back(d);
      m.degradation_sum += d;
    }
    snap.machines.push_back(std::move(m));
  }

  Real sum = 0.0;
  std::int64_t real_count = 0;
  for (const Job& job : problem.batch.jobs()) {
    if (job.kind == JobKind::Imaginary) continue;
    for (ProcessId p : job.processes) {
      sum += snap.per_process[static_cast<std::size_t>(p)];
      ++real_count;
    }
  }
  snap.mean_real_degradation =
      real_count == 0 ? 0.0 : sum / static_cast<Real>(real_count);
  return snap;
}

}  // namespace cosched
