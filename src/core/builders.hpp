// Problem builders: assemble a full co-scheduling instance from either the
// benchmark catalog (the paper's real-job experiments) or from synthetic
// miss rates (the paper's large-scale sweeps, Figs. 5, 12, 13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/degradation_models.hpp"
#include "core/problem.hpp"

namespace cosched {

/// One parallel job in a catalog-backed instance.
struct ParallelJobSpec {
  std::string program;       ///< catalog name (e.g. "MG-Par", "RA")
  std::int32_t processes = 2;
  bool with_comm = false;    ///< true → PC job with its default pattern
  /// Halo volume per exchange in bytes (PC only). Default gives comm times
  /// of the same order as the contention degradations.
  Real halo_bytes = 2.0e5;
};

struct CatalogProblemSpec {
  std::uint32_t cores = 4;                 ///< u: 2, 4 or 8
  std::vector<std::string> serial_programs;
  std::vector<ParallelJobSpec> parallel_jobs;
  std::size_t trace_length = 200000;
  std::uint64_t seed = 42;
};

/// Builds a Problem whose degradations come from the SDC pipeline over the
/// catalog programs characterized on the chosen machine. The batch is padded
/// to a multiple of u with imaginary processes.
Problem build_catalog_problem(const CatalogProblemSpec& spec);

struct SyntheticProblemSpec {
  std::uint32_t cores = 4;
  /// Degradation response shape; Threshold also draws bimodal miss rates
  /// (compute-bound vs memory-bound modes), Smooth draws uniformly.
  SyntheticLandscape landscape = SyntheticLandscape::Threshold;
  std::int32_t serial_jobs = 0;
  /// Sizes (process counts) of parallel jobs to add.
  std::vector<std::int32_t> parallel_job_sizes;
  bool parallel_with_comm = false;  ///< PE when false, PC when true
  std::int32_t comm_dims = 2;       ///< decomposition for PC jobs
  Real halo_bytes = 5.0e7;          ///< sized against solo_time == 1
  Real miss_rate_lo = 0.15;         ///< paper: miss rates in [15%, 75%]
  Real miss_rate_hi = 0.75;
  std::uint64_t seed = 1;
};

/// Builds a Problem over the closed-form synthetic degradation model.
Problem build_synthetic_problem(const SyntheticProblemSpec& spec);

/// The paper's synthetic-job methodology (Section IV/V): each job gets a
/// random cache miss rate in [15%, 75%], from which a parametric stack
/// distance profile is synthesized (memory-hungrier jobs reuse lines at
/// deeper stack positions and spend fewer compute cycles per access);
/// degradations then come from the full SDC + Eq. 14-15 pipeline, exactly
/// like catalog problems. Used by the Fig. 5 MER study.
struct SdcSyntheticSpec {
  std::uint32_t cores = 4;
  std::int32_t serial_jobs = 0;
  std::vector<std::int32_t> parallel_job_sizes;
  bool parallel_with_comm = false;
  std::int32_t comm_dims = 2;
  Real halo_bytes = 2.0e5;
  Real miss_rate_lo = 0.15;
  Real miss_rate_hi = 0.75;
  Real accesses = 100000.0;  ///< per-job access count (profile mass)
  /// Number of discrete miss-rate values to draw from ("randomly generated
  /// cache misses" in the paper reads as a discrete draw); 0 = continuous.
  /// Discrete rates produce exact weight ties between symmetric nodes, the
  /// regime in which the paper's MER statistics (Fig. 5) arise.
  std::int32_t miss_rate_steps = 13;
  std::uint64_t seed = 1;
};

Problem build_sdc_synthetic_problem(const SdcSyntheticSpec& spec);

}  // namespace cosched
