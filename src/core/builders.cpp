#include "core/builders.hpp"

#include <algorithm>

#include "cache/machine_config.hpp"
#include "comm/decomposition.hpp"
#include "core/degradation_models.hpp"
#include "util/rng.hpp"
#include "workload/benchmark_catalog.hpp"

namespace cosched {

Problem build_catalog_problem(const CatalogProblemSpec& spec) {
  Problem problem;
  problem.machine = machine_by_cores(spec.cores);
  ProgramCharacterizer characterizer(problem.machine, spec.trace_length,
                                     spec.seed);

  std::vector<SdcDegradationModel::ProcessProgram> programs;
  auto topology = std::make_shared<CommTopology>();
  bool any_pc = false;

  auto push_program = [&](const std::string& name) {
    const CharacterizedProgram& c = characterizer.characterize(name);
    SdcDegradationModel::ProcessProgram p;
    p.sdp = c.sdp;
    p.timing = c.timing;
    p.solo_time_seconds = c.solo_time_seconds;
    p.solo_miss_rate = c.solo_miss_rate;
    programs.push_back(std::move(p));
  };

  for (const auto& name : spec.serial_programs) {
    problem.batch.add_job(name, JobKind::Serial, 1);
    push_program(name);
  }
  for (const auto& pj : spec.parallel_jobs) {
    COSCHED_EXPECTS(pj.processes >= 1);
    JobKind kind =
        pj.with_comm ? JobKind::ParallelComm : JobKind::ParallelNoComm;
    JobId job = problem.batch.add_job(pj.program, kind, pj.processes);
    ProcessId first = problem.batch.job(job).processes.front();
    for (std::int32_t r = 0; r < pj.processes; ++r) push_program(pj.program);
    if (pj.with_comm) {
      topology->attach(
          job, first,
          default_pattern_for(pj.program, pj.processes, pj.halo_bytes));
      any_pc = true;
    }
  }

  std::int32_t padded =
      problem.batch.pad_to_multiple(static_cast<std::int32_t>(spec.cores));
  for (std::int32_t k = 0; k < padded; ++k)
    programs.emplace_back();  // inert: empty SDP

  auto contention = std::make_shared<SdcDegradationModel>(
      problem.machine, std::move(programs));
  problem.contention_model = contention;
  if (any_pc) {
    problem.topology = topology;
    problem.full_model = std::make_shared<CommAwareDegradationModel>(
        contention, topology, problem.machine.network_bandwidth);
  } else {
    problem.full_model = contention;
  }
  problem.check();
  return problem;
}

Problem build_synthetic_problem(const SyntheticProblemSpec& spec) {
  COSCHED_EXPECTS(spec.serial_jobs >= 0);
  Problem problem;
  problem.machine = machine_by_cores(spec.cores);
  Rng rng(spec.seed);

  auto topology = std::make_shared<CommTopology>();
  bool any_pc = false;
  std::vector<Real> rates;
  std::vector<Real> sens;
  auto draw_job = [&]() {
    // Threshold landscape: bimodal pressure, mirroring the paper's workload
    // mix of compute-intensive (PI, MMS, EP) and memory-intensive (RA, art)
    // programs. Smooth landscape: uniform pressure. Sensitivity follows
    // pressure with an independent component, so politeness-style scalar
    // orderings stay informative but insufficient.
    Real span = spec.miss_rate_hi - spec.miss_rate_lo;
    Real r;
    if (spec.landscape == SyntheticLandscape::Threshold) {
      r = rng.uniform01() < 0.5
              ? rng.uniform_real(spec.miss_rate_lo,
                                 spec.miss_rate_lo + 0.3 * span)
              : rng.uniform_real(spec.miss_rate_hi - 0.3 * span,
                                 spec.miss_rate_hi);
    } else {
      r = rng.uniform_real(spec.miss_rate_lo, spec.miss_rate_hi);
    }
    // Bilinear landscape: sensitivity == pressure (the rank-pairing
    // objective); others get a noisy correlated sensitivity.
    Real s = spec.landscape == SyntheticLandscape::Bilinear
                 ? r
                 : 0.3 + r + rng.uniform_real(-0.15, 0.15);
    return std::pair{r, s};
  };

  // Serial jobs are numbered in descending pressure order: ids define graph
  // levels (level lead = smallest unscheduled id), so this makes every
  // level led by the heaviest remaining job, aligning the level structure
  // with heavy-with-light pairing (same convention as
  // build_sdc_synthetic_problem; see EXPERIMENTS.md).
  std::vector<std::pair<Real, Real>> serial_draws(
      static_cast<std::size_t>(spec.serial_jobs));
  for (auto& d : serial_draws) d = draw_job();
  std::sort(serial_draws.begin(), serial_draws.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::int32_t s = 0; s < spec.serial_jobs; ++s) {
    problem.batch.add_job("syn" + std::to_string(s), JobKind::Serial, 1);
    rates.push_back(serial_draws[static_cast<std::size_t>(s)].first);
    sens.push_back(serial_draws[static_cast<std::size_t>(s)].second);
  }
  std::int32_t pj_index = 0;
  for (std::int32_t size : spec.parallel_job_sizes) {
    COSCHED_EXPECTS(size >= 1);
    JobKind kind = spec.parallel_with_comm ? JobKind::ParallelComm
                                           : JobKind::ParallelNoComm;
    JobId job = problem.batch.add_job("par" + std::to_string(pj_index++),
                                      kind, size);
    ProcessId first = problem.batch.job(job).processes.front();
    // All processes of a parallel job share its (random) characteristics:
    // parallel workers execute the same code on equal shards.
    auto [rate, sen] = draw_job();
    for (std::int32_t r = 0; r < size; ++r) {
      rates.push_back(rate);
      sens.push_back(sen);
    }
    if (spec.parallel_with_comm) {
      topology->attach(job, first,
                       make_grid_pattern(size, spec.comm_dims,
                                         spec.halo_bytes));
      any_pc = true;
    }
  }

  std::int32_t padded =
      problem.batch.pad_to_multiple(static_cast<std::int32_t>(spec.cores));
  for (std::int32_t k = 0; k < padded; ++k) {
    rates.push_back(0.0);
    sens.push_back(0.0);
  }

  // Capacity at the mid landscape: the mean job pressure times the number
  // of co-runners, so quad- and 8-core machines both sit mid-S-curve
  // (bigger shared caches absorb proportionally more combined pressure).
  Real capacity = 0.5 * (spec.miss_rate_lo + spec.miss_rate_hi) *
                  static_cast<Real>(spec.cores - 1);
  auto contention = std::make_shared<SyntheticDegradationModel>(
      std::move(rates), std::move(sens), capacity, spec.landscape);
  problem.contention_model = contention;
  if (any_pc) {
    problem.topology = topology;
    problem.full_model = std::make_shared<CommAwareDegradationModel>(
        contention, topology, problem.machine.network_bandwidth);
  } else {
    problem.full_model = contention;
  }
  problem.check();
  return problem;
}

namespace {

/// Synthesizes the SDP + timing of a job with miss rate `r`: hits decay
/// geometrically over stack positions with a decay that flattens (deeper
/// reuse) as the job gets hungrier, and compute intensity falls with r.
SdcDegradationModel::ProcessProgram synthesize_program(
    Real r, Real accesses, std::uint32_t associativity,
    const MachineConfig& machine) {
  COSCHED_EXPECTS(r >= 0.0 && r <= 1.0);
  SdcDegradationModel::ProcessProgram p;
  const Real total_hits = (1.0 - r) * accesses;
  const Real decay = std::min<Real>(0.97, 0.35 + 0.8 * r);
  std::vector<Real> hits(associativity);
  Real norm = 0.0;
  Real w = 1.0;
  for (std::uint32_t d = 0; d < associativity; ++d) {
    hits[d] = w;
    norm += w;
    w *= decay;
  }
  for (auto& h : hits) h = h / norm * total_hits;
  p.sdp = StackDistanceProfile(std::move(hits), r * accesses);
  const Real cycles_per_access = 4.0 + 30.0 * (1.0 - r);
  p.timing.base_cycles = accesses * cycles_per_access;
  p.timing.solo_misses = r * accesses;
  p.solo_time_seconds =
      cpu_time_seconds(p.timing, p.timing.solo_misses, machine);
  p.solo_miss_rate = r;
  return p;
}

}  // namespace

Problem build_sdc_synthetic_problem(const SdcSyntheticSpec& spec) {
  COSCHED_EXPECTS(spec.serial_jobs >= 0);
  COSCHED_EXPECTS(spec.accesses >= 1.0);
  Problem problem;
  problem.machine = machine_by_cores(spec.cores);
  const std::uint32_t assoc = problem.machine.shared_cache.associativity;
  Rng rng(spec.seed);

  auto topology = std::make_shared<CommTopology>();
  bool any_pc = false;
  std::vector<SdcDegradationModel::ProcessProgram> programs;

  auto draw_rate = [&]() {
    if (spec.miss_rate_steps <= 1)
      return rng.uniform_real(spec.miss_rate_lo, spec.miss_rate_hi);
    auto step = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(spec.miss_rate_steps)));
    return spec.miss_rate_lo + (spec.miss_rate_hi - spec.miss_rate_lo) *
                                   static_cast<Real>(step) /
                                   static_cast<Real>(spec.miss_rate_steps - 1);
  };

  // Serial jobs are numbered in descending miss-rate order. Process ids
  // define the graph levels (level lead = smallest unscheduled id), so this
  // makes every level led by the heaviest remaining job — whose best
  // partners are light jobs, i.e. the level's cheapest nodes. This id
  // ordering is what keeps the effective ranks of optimal paths small
  // (the Fig. 5 MER statistics; see EXPERIMENTS.md).
  std::vector<Real> serial_rates(static_cast<std::size_t>(spec.serial_jobs));
  for (auto& r : serial_rates) r = draw_rate();
  std::sort(serial_rates.begin(), serial_rates.end(), std::greater<>());
  for (std::int32_t s = 0; s < spec.serial_jobs; ++s) {
    problem.batch.add_job("syn" + std::to_string(s), JobKind::Serial, 1);
    programs.push_back(
        synthesize_program(serial_rates[static_cast<std::size_t>(s)],
                           spec.accesses, assoc, problem.machine));
  }
  std::int32_t pj_index = 0;
  for (std::int32_t size : spec.parallel_job_sizes) {
    COSCHED_EXPECTS(size >= 1);
    JobKind kind = spec.parallel_with_comm ? JobKind::ParallelComm
                                           : JobKind::ParallelNoComm;
    JobId job = problem.batch.add_job("par" + std::to_string(pj_index++),
                                      kind, size);
    ProcessId first = problem.batch.job(job).processes.front();
    Real r = draw_rate();
    for (std::int32_t k = 0; k < size; ++k)
      programs.push_back(
          synthesize_program(r, spec.accesses, assoc, problem.machine));
    if (spec.parallel_with_comm) {
      topology->attach(job, first,
                       make_grid_pattern(size, spec.comm_dims,
                                         spec.halo_bytes));
      any_pc = true;
    }
  }

  std::int32_t padded =
      problem.batch.pad_to_multiple(static_cast<std::int32_t>(spec.cores));
  for (std::int32_t k = 0; k < padded; ++k)
    programs.emplace_back();  // inert

  auto contention = std::make_shared<SdcDegradationModel>(
      problem.machine, std::move(programs));
  problem.contention_model = contention;
  if (any_pc) {
    problem.topology = topology;
    problem.full_model = std::make_shared<CommAwareDegradationModel>(
        contention, topology, problem.machine.network_bandwidth);
  } else {
    problem.full_model = contention;
  }
  problem.check();
  return problem;
}

}  // namespace cosched
