#include "core/oracle_cache.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

namespace cosched {

namespace {

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

DegradationCache::DegradationCache(std::size_t shard_count) {
  std::size_t n = round_up_pow2(std::max<std::size_t>(shard_count, 1));
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

DegradationCache::Shard& DegradationCache::shard_for(const std::string& key) {
  std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & (shards_.size() - 1)];
}

const DegradationCache::Shard& DegradationCache::shard_for(
    const std::string& key) const {
  std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & (shards_.size() - 1)];
}

bool DegradationCache::lookup(const std::string& key, Real& out) const {
  const Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out = it->second;
  return true;
}

void DegradationCache::insert(const std::string& key, Real value) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.emplace(key, value);
}

void DegradationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::size_t DegradationCache::evict_dead(std::span<const ProcessId> live_ids) {
  // The key is the raw little-pattern memcpy of (subject id, sorted co
  // ids): decode each id and erase the entry on the first dead one.
  std::vector<bool> alive;
  for (ProcessId id : live_ids) {
    if (id < 0) continue;
    std::size_t idx = static_cast<std::size_t>(id);
    if (idx >= alive.size()) alive.resize(idx + 1, false);
    alive[idx] = true;
  }
  auto is_live = [&](ProcessId id) {
    return id >= 0 && static_cast<std::size_t>(id) < alive.size() &&
           alive[static_cast<std::size_t>(id)];
  };
  std::size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      const std::string& key = it->first;
      bool dead = false;
      for (std::size_t off = 0; off + sizeof(ProcessId) <= key.size();
           off += sizeof(ProcessId)) {
        ProcessId id;
        std::memcpy(&id, key.data() + off, sizeof(ProcessId));
        if (!is_live(id)) {
          dead = true;
          break;
        }
      }
      if (dead) {
        it = shard->map.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return evicted;
}

DegradationCache::Stats DegradationCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.entries += shard->map.size();
  }
  return s;
}

std::string DegradationCache::make_key(ProcessId stable_i,
                                       std::vector<ProcessId> co_stable) {
  co_stable.erase(
      std::remove_if(co_stable.begin(), co_stable.end(),
                     [](ProcessId p) { return p < 0; }),
      co_stable.end());
  std::sort(co_stable.begin(), co_stable.end());
  std::string key;
  key.resize((co_stable.size() + 1) * sizeof(ProcessId));
  std::memcpy(key.data(), &stable_i, sizeof(ProcessId));
  if (!co_stable.empty())
    std::memcpy(key.data() + sizeof(ProcessId), co_stable.data(),
                co_stable.size() * sizeof(ProcessId));
  return key;
}

CachingDegradationModel::CachingDegradationModel(
    DegradationModelPtr base, DegradationCachePtr cache,
    std::vector<ProcessId> stable_ids, BaseModelConcurrency concurrency)
    : base_(std::move(base)),
      cache_(std::move(cache)),
      stable_ids_(std::move(stable_ids)),
      concurrency_(concurrency) {
  COSCHED_EXPECTS(base_ != nullptr);
  COSCHED_EXPECTS(cache_ != nullptr);
}

Real CachingDegradationModel::degradation(
    ProcessId i, std::span<const ProcessId> co) const {
  ProcessId stable_i = stable_of(i);
  if (stable_i < 0) return base_->degradation(i, co);  // inert padding

  std::vector<ProcessId> co_stable;
  co_stable.reserve(co.size());
  for (ProcessId p : co) co_stable.push_back(stable_of(p));
  std::string key = DegradationCache::make_key(stable_i, std::move(co_stable));

  Real value = 0.0;
  if (cache_->lookup(key, value)) return value;
  if (concurrency_ == BaseModelConcurrency::Serialized) {
    std::lock_guard<std::mutex> lock(base_mutex_);
    value = base_->degradation(i, co);
  } else {
    value = base_->degradation(i, co);
  }
  cache_->insert(key, value);
  return value;
}

}  // namespace cosched
