// Thread-safe, shareable memoization of degradation queries.
//
// The offline solvers build one Problem, query its model single-threaded,
// and throw everything away. The online service (src/online) rebuilds a
// Problem at every replan — same live processes, new local numbering — and
// may evaluate candidate placements from several threads. DegradationCache
// is the piece that makes this cheap and safe:
//
//  * the cache is keyed by caller-supplied *stable* ids (the online
//    service's global process ids), so entries survive Problem rebuilds and
//    local renumbering;
//  * the table is striped into mutex-guarded shards, so concurrent replan
//    evaluation scales instead of serializing on one lock;
//  * CachingDegradationModel is a drop-in DegradationModel decorator: wrap
//    any base model, hand several wrappers the same DegradationCache;
//  * stable ids are only ever retired, never reused, across a service
//    lifetime — so evict_dead() can drop every entry that mentions a
//    finished process id and keep a long-lived server's cache bounded by
//    the live set instead of by everything that ever ran.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/degradation_model.hpp"

namespace cosched {

/// Striped concurrent map from (stable id, stable co-runner set) to a
/// degradation value. Safe for concurrent lookup/insert from any number of
/// threads.
class DegradationCache {
 public:
  /// `shard_count` is rounded up to a power of two (at least 1).
  explicit DegradationCache(std::size_t shard_count = 16);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t evictions = 0;    ///< entries dropped by evict_dead()
    std::uint64_t compactions = 0;  ///< evict_dead() passes run
    Real hit_rate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<Real>(hits) /
                                    static_cast<Real>(total);
    }
  };
  Stats stats() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Returns true and fills `out` on a hit. Counts a hit/miss either way.
  bool lookup(const std::string& key, Real& out) const;
  /// Inserts (idempotent: the first value stored for a key wins).
  void insert(const std::string& key, Real value);
  void clear();

  /// Epoch compaction: erases every entry whose key mentions a stable id
  /// NOT in `live_ids` (subject or co-runner). Callers hand in the ids of
  /// the processes still running; everything about finished processes —
  /// including live-process entries keyed against finished co-runners — is
  /// dead weight, because retired stable ids never come back. Safe against
  /// concurrent lookup/insert. Returns the number of entries evicted.
  std::size_t evict_dead(std::span<const ProcessId> live_ids);

  /// Packs (stable id, stable co ids) into a map key. `co_stable` need not
  /// be sorted; negative ids (inert padding) are dropped — the
  /// DegradationModel contract says they contribute nothing.
  static std::string make_key(ProcessId stable_i,
                              std::vector<ProcessId> co_stable);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Real> map;
  };
  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compactions_{0};
};

using DegradationCachePtr = std::shared_ptr<DegradationCache>;

/// Whether a base model's degradation() may be invoked from several threads
/// at once. Closed-form models (Synthetic, Tabular after construction) are
/// safe; SdcDegradationModel memoizes internally without locks and is not.
enum class BaseModelConcurrency {
  Serialized,      ///< miss computations are serialized behind one mutex
  ConcurrentSafe,  ///< base model may be called concurrently
};

/// Decorator memoizing degradation() into a shared DegradationCache.
///
/// `stable_ids` maps the wrapped model's local process ids to the stable
/// ids used for cache keys (empty = identity: local ids are already
/// stable). A negative stable id marks an inert process (padding): its own
/// degradation bypasses the cache and it is dropped from co-runner keys.
class CachingDegradationModel final : public DegradationModel {
 public:
  CachingDegradationModel(
      DegradationModelPtr base, DegradationCachePtr cache,
      std::vector<ProcessId> stable_ids = {},
      BaseModelConcurrency concurrency = BaseModelConcurrency::Serialized);

  Real degradation(ProcessId i, std::span<const ProcessId> co) const override;
  Real solo_time(ProcessId i) const override { return base_->solo_time(i); }
  Real pressure(ProcessId i) const override { return base_->pressure(i); }

  const DegradationCache& cache() const { return *cache_; }

 private:
  ProcessId stable_of(ProcessId local) const {
    if (stable_ids_.empty()) return local;
    COSCHED_EXPECTS(local >= 0 &&
                    static_cast<std::size_t>(local) < stable_ids_.size());
    return stable_ids_[static_cast<std::size_t>(local)];
  }

  DegradationModelPtr base_;
  DegradationCachePtr cache_;
  std::vector<ProcessId> stable_ids_;
  BaseModelConcurrency concurrency_;
  mutable std::mutex base_mutex_;  ///< guards base_ in Serialized mode
};

}  // namespace cosched
