#include "core/degradation_models.hpp"

#include <algorithm>
#include <cstring>

#include "cache/sdc_model.hpp"

namespace cosched {

// ---------------------------------------------------------------- Tabular --

TabularDegradationModel::TabularDegradationModel(std::int32_t num_processes)
    : n_(num_processes),
      pressure_(static_cast<std::size_t>(num_processes), 0.0),
      solo_time_(static_cast<std::size_t>(num_processes), 1.0) {
  COSCHED_EXPECTS(num_processes >= 1);
}

void TabularDegradationModel::set(ProcessId i, std::vector<ProcessId> co,
                                  Real d) {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  COSCHED_EXPECTS(d >= 0.0);
  std::sort(co.begin(), co.end());
  table_[{i, std::move(co)}] = d;
}

void TabularDegradationModel::set_pressure(ProcessId i, Real pressure) {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  pressure_[static_cast<std::size_t>(i)] = pressure;
}

void TabularDegradationModel::set_solo_time(ProcessId i, Real t) {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  COSCHED_EXPECTS(t > 0.0);
  solo_time_[static_cast<std::size_t>(i)] = t;
}

Real TabularDegradationModel::degradation(
    ProcessId i, std::span<const ProcessId> co) const {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  std::vector<ProcessId> key(co.begin(), co.end());
  std::sort(key.begin(), key.end());
  auto it = table_.find({i, key});
  return it == table_.end() ? 0.0 : it->second;
}

Real TabularDegradationModel::solo_time(ProcessId i) const {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  return solo_time_[static_cast<std::size_t>(i)];
}

Real TabularDegradationModel::pressure(ProcessId i) const {
  COSCHED_EXPECTS(i >= 0 && i < n_);
  return pressure_[static_cast<std::size_t>(i)];
}

// -------------------------------------------------------------- Synthetic --

SyntheticDegradationModel::SyntheticDegradationModel(
    std::vector<Real> miss_rates)
    : rates_(std::move(miss_rates)) {
  COSCHED_EXPECTS(!rates_.empty());
  sensitivities_.reserve(rates_.size());
  for (Real r : rates_) {
    COSCHED_EXPECTS(r >= 0.0 && r <= 1.0);
    sensitivities_.push_back(r > 0.0 ? 0.3 + r : 0.0);
  }
}

SyntheticDegradationModel::SyntheticDegradationModel(
    std::vector<Real> miss_rates, std::vector<Real> sensitivities,
    Real capacity, SyntheticLandscape landscape)
    : rates_(std::move(miss_rates)),
      sensitivities_(std::move(sensitivities)),
      capacity_(capacity),
      landscape_(landscape) {
  COSCHED_EXPECTS(!rates_.empty());
  COSCHED_EXPECTS(capacity_ > 0.0);
  COSCHED_EXPECTS(rates_.size() == sensitivities_.size());
  for (Real r : rates_) COSCHED_EXPECTS(r >= 0.0 && r <= 1.0);
  for (Real s : sensitivities_) COSCHED_EXPECTS(s >= 0.0);
}

std::shared_ptr<SyntheticDegradationModel> SyntheticDegradationModel::random(
    std::int32_t num_processes, Rng& rng, Real lo, Real hi) {
  COSCHED_EXPECTS(num_processes >= 1);
  COSCHED_EXPECTS(lo >= 0.0 && hi <= 1.0 && lo <= hi);
  std::vector<Real> rates(static_cast<std::size_t>(num_processes));
  std::vector<Real> sens(static_cast<std::size_t>(num_processes));
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = rng.uniform_real(lo, hi);
    sens[i] = rng.uniform_real(0.2, 1.2);
  }
  return std::make_shared<SyntheticDegradationModel>(std::move(rates),
                                                     std::move(sens));
}

Real SyntheticDegradationModel::degradation(
    ProcessId i, std::span<const ProcessId> co) const {
  COSCHED_EXPECTS(i >= 0 &&
                  static_cast<std::size_t>(i) < rates_.size());
  Real r_i = rates_[static_cast<std::size_t>(i)];
  if (r_i <= 0.0) return 0.0;  // imaginary / inert process
  Real pressure_sum = 0.0;
  for (ProcessId k : co) {
    COSCHED_EXPECTS(k >= 0 && static_cast<std::size_t>(k) < rates_.size());
    COSCHED_EXPECTS(k != i);
    pressure_sum += rates_[static_cast<std::size_t>(k)];
  }
  // S-curve (threshold) response: little harm while the combined working
  // set fits the shared cache, sharply growing once it overflows, then
  // saturating — the qualitative shape cache contention exhibits.
  Real sensitivity = sensitivities_[static_cast<std::size_t>(i)];
  Real x = pressure_sum / capacity_;
  switch (landscape_) {
    case SyntheticLandscape::Smooth:
      return sensitivity * x / (x + 1.0) * kScale;
    case SyntheticLandscape::Bilinear:
      return sensitivity * x * kScale;
    case SyntheticLandscape::Threshold:
      break;
  }
  Real x2 = x * x;
  Real x4 = x2 * x2;
  return sensitivity * x4 / (x4 + 1.0) * kScale;
}

Real SyntheticDegradationModel::pressure(ProcessId i) const {
  COSCHED_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < rates_.size());
  return rates_[static_cast<std::size_t>(i)];
}

// -------------------------------------------------------------------- SDC --

SdcDegradationModel::SdcDegradationModel(MachineConfig machine,
                                         std::vector<ProcessProgram> programs)
    : machine_(std::move(machine)), programs_(std::move(programs)) {
  COSCHED_EXPECTS(!programs_.empty());
  for (const auto& p : programs_) {
    if (p.sdp.associativity() == 0) continue;  // inert
    COSCHED_EXPECTS(p.sdp.associativity() ==
                    machine_.shared_cache.associativity);
    COSCHED_EXPECTS(p.solo_time_seconds > 0.0);
  }
}

Real SdcDegradationModel::degradation(ProcessId i,
                                      std::span<const ProcessId> co) const {
  COSCHED_EXPECTS(i >= 0 &&
                  static_cast<std::size_t>(i) < programs_.size());
  if (is_inert(i)) return 0.0;

  // Memo key: i followed by sorted real co-runner ids.
  std::vector<ProcessId> others;
  others.reserve(co.size());
  for (ProcessId k : co) {
    COSCHED_EXPECTS(k >= 0 &&
                    static_cast<std::size_t>(k) < programs_.size());
    COSCHED_EXPECTS(k != i);
    if (!is_inert(k)) others.push_back(k);
  }
  std::sort(others.begin(), others.end());

  std::string key(sizeof(ProcessId) * (others.size() + 1), '\0');
  std::memcpy(key.data(), &i, sizeof(ProcessId));
  if (!others.empty())
    std::memcpy(key.data() + sizeof(ProcessId), others.data(),
                sizeof(ProcessId) * others.size());
  if (auto it = memo_.find(key); it != memo_.end()) return it->second;

  Real d = 0.0;
  if (!others.empty()) {
    std::vector<const StackDistanceProfile*> profiles;
    profiles.reserve(others.size() + 1);
    profiles.push_back(&programs_[static_cast<std::size_t>(i)].sdp);
    for (ProcessId k : others)
      profiles.push_back(&programs_[static_cast<std::size_t>(k)].sdp);
    std::vector<Real> misses = sdc_predict_misses(profiles);
    d = degradation_from_misses(programs_[static_cast<std::size_t>(i)].timing,
                                misses[0], machine_);
  }
  memo_.emplace(std::move(key), d);
  return d;
}

Real SdcDegradationModel::solo_time(ProcessId i) const {
  COSCHED_EXPECTS(i >= 0 &&
                  static_cast<std::size_t>(i) < programs_.size());
  if (is_inert(i)) return 1.0;
  return programs_[static_cast<std::size_t>(i)].solo_time_seconds;
}

Real SdcDegradationModel::pressure(ProcessId i) const {
  COSCHED_EXPECTS(i >= 0 &&
                  static_cast<std::size_t>(i) < programs_.size());
  return programs_[static_cast<std::size_t>(i)].solo_miss_rate;
}

// -------------------------------------------------------------- CommAware --

CommAwareDegradationModel::CommAwareDegradationModel(
    DegradationModelPtr base, std::shared_ptr<const CommTopology> topology,
    Real bandwidth_bytes_per_s)
    : base_(std::move(base)),
      topology_(std::move(topology)),
      bandwidth_(bandwidth_bytes_per_s) {
  COSCHED_EXPECTS(base_ != nullptr);
  COSCHED_EXPECTS(topology_ != nullptr);
  COSCHED_EXPECTS(bandwidth_ > 0.0);
}

Real CommAwareDegradationModel::degradation(
    ProcessId i, std::span<const ProcessId> co) const {
  Real d = base_->degradation(i, co);
  Real c = topology_->comm_time(i, co, bandwidth_);
  if (c > 0.0) d += c / base_->solo_time(i);  // Eq. 9: + c(i,S)/ct_i
  return d;
}

}  // namespace cosched
