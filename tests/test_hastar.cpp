// Tests for HA* (heuristic A*) and the k-best candidate generation.
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "graph/node_enumerator.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pe_problem;
using testhelpers::random_serial_problem;

// ------------------------------------------------------ k-best candidates

TEST(KBestNodes, ExactSelectionReturnsCheapestValidNodes) {
  Problem p = random_serial_problem(10, 2, 3);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> pool{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto k3 = k_best_valid_nodes(eval, 0, pool, 2, 3,
                               CandidateSelection::ExactSort);
  ASSERT_EQ(k3.size(), 3u);
  EXPECT_LE(k3[0].weight, k3[1].weight);
  EXPECT_LE(k3[1].weight, k3[2].weight);
  // Exhaustive check: no valid node is cheaper than k3[0].
  auto all = k_best_valid_nodes(eval, 0, pool, 2, 9,
                                CandidateSelection::ExactSort);
  EXPECT_NEAR(all[0].weight, k3[0].weight, 1e-12);
}

TEST(KBestNodes, SurrogateLandsNearTheExactBest) {
  // The pressure-sum surrogate orders candidates by inflicted load only;
  // the model's independent sensitivity dimension is invisible to it.
  Problem p = random_serial_problem(12, 4, 4);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> pool;
  for (ProcessId q = 1; q < p.n(); ++q) pool.push_back(q);
  auto exact = k_best_valid_nodes(eval, 0, pool, 4, 1,
                                  CandidateSelection::ExactSort);
  auto surrogate = k_best_valid_nodes(eval, 0, pool, 4, 1,
                                      CandidateSelection::SurrogateHeap,
                                      /*overgen=*/32);
  ASSERT_EQ(exact.size(), 1u);
  ASSERT_EQ(surrogate.size(), 1u);
  // The pressure-sum surrogate cannot rank the two-dimensional model
  // exactly (sensitivity is invisible to it); with over-generation it must
  // land close to the true cheapest node.
  EXPECT_GE(surrogate[0].weight, exact[0].weight - 1e-9);
  EXPECT_LE(surrogate[0].weight, exact[0].weight * 1.15 + 1e-9);
}

TEST(KBestNodes, CandidatesAreValidNodes) {
  Problem p = random_serial_problem(12, 4, 5);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> pool{2, 3, 5, 7, 8, 9, 10, 11};
  for (auto sel :
       {CandidateSelection::ExactSort, CandidateSelection::SurrogateHeap}) {
    auto cands = k_best_valid_nodes(eval, 1, pool, 4, 4, sel);
    for (const auto& c : cands) {
      ASSERT_EQ(c.node.size(), 4u);
      EXPECT_EQ(c.node[0], 1);
      EXPECT_TRUE(std::is_sorted(c.node.begin(), c.node.end()));
      for (std::size_t i = 1; i < c.node.size(); ++i)
        EXPECT_NE(std::find(pool.begin(), pool.end(), c.node[i]), pool.end());
      ASSERT_EQ(c.member_d.size(), 4u);
      Real sum = 0.0;
      for (Real d : c.member_d) sum += d;
      EXPECT_NEAR(sum, c.weight, 1e-12);
    }
  }
}

// ------------------------------------------------------------------- HA*

TEST(HaStar, ProducesValidSchedules) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Problem p = random_serial_problem(24, 4, seed);
    auto r = solve_hastar(p);
    ASSERT_TRUE(r.found) << "seed " << seed;
    validate_solution(p, r.solution);
  }
}

TEST(HaStar, NearOptimalOnSmallInstances) {
  // The paper reports HA* within ~10% of OA*; on small instances verify a
  // modest bound (and never better than the optimum).
  Real worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Problem p = random_serial_problem(12, 4, seed);
    auto opt = solve_oastar(p);
    auto ha = solve_hastar(p);
    ASSERT_TRUE(opt.found && ha.found);
    EXPECT_GE(ha.objective, opt.objective - 1e-9) << "seed " << seed;
    if (opt.objective > 0)
      worst_ratio = std::max(worst_ratio, ha.objective / opt.objective);
  }
  // The threshold-shaped landscape makes the n/u candidate cap genuinely
  // lossy (see the Fig. 5 reproduction note); the paper-scale quality
  // comparison lives in fig10/fig11.
  EXPECT_LT(worst_ratio, 1.50);
}

TEST(HaStar, OftenExactAtPaperScales) {
  // Fig. 5's statistics imply MER <= n/u almost always, i.e. HA* == OA* on
  // most instances; check the average gap is small.
  Real total_gap = 0.0;
  int count = 0;
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    Problem p = random_serial_problem(16, 4, seed);
    auto opt = solve_oastar(p);
    auto ha = solve_hastar(p);
    ASSERT_TRUE(opt.found && ha.found);
    total_gap += (ha.objective - opt.objective) /
                 std::max<Real>(opt.objective, 1e-12);
    ++count;
  }
  EXPECT_LT(total_gap / count, 0.15);
}

TEST(HaStar, MerCapOneIsPureGreedy) {
  Problem p = random_serial_problem(16, 4, 31);
  SearchOptions opt;
  opt.mer_cap = 1;
  auto r = solve_hastar(p, opt);
  ASSERT_TRUE(r.found);
  validate_solution(p, r.solution);
  // Greedy (cap 1) cannot beat the wider HA*.
  auto wide = solve_hastar(p);
  EXPECT_GE(r.objective, wide.objective - 1e-9);
}

TEST(HaStar, VisitsFewerPathsThanOaStar) {
  Problem p = random_serial_problem(20, 4, 32);
  auto oa = solve_oastar(p);
  auto ha = solve_hastar(p);
  ASSERT_TRUE(oa.found && ha.found);
  EXPECT_LT(ha.stats.visited_paths, oa.stats.visited_paths);
}

TEST(HaStar, HandlesParallelJobs) {
  Problem p = random_pe_problem(10, {5, 3}, 4, 33);
  auto r = solve_hastar(p);
  ASSERT_TRUE(r.found);
  validate_solution(p, r.solution);
  auto ev = evaluate_solution(p, r.solution);
  EXPECT_NEAR(ev.total, r.objective, 1e-9);
}

TEST(HaStar, ScalesToHundredsOfProcessesViaApproxStats) {
  // Exercise the approximate level-stats + surrogate-heap path end to end.
  Problem p = random_serial_problem(240, 4, 34);
  SearchOptions opt;
  opt.max_stats_nodes = 100'000;  // force approx stats
  auto r = solve_hastar(p, opt);
  ASSERT_TRUE(r.found);
  validate_solution(p, r.solution);
  EXPECT_GT(r.objective, 0.0);
}

TEST(HaStar, OaStarRefusesApproxStats) {
  Problem p = random_serial_problem(24, 4, 35);
  SearchOptions opt;
  opt.max_stats_nodes = 10;  // cannot build exact stats
  EXPECT_THROW(solve_oastar(p, opt), ContractViolation);
}

}  // namespace
}  // namespace cosched
