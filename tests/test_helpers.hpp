// Shared factories for search/IP/baseline tests.
#pragma once

#include "core/builders.hpp"
#include "core/degradation_models.hpp"
#include "core/problem.hpp"

namespace cosched::testhelpers {

/// Random serial-only synthetic problem.
inline Problem random_serial_problem(std::int32_t jobs, std::uint32_t cores,
                                     std::uint64_t seed) {
  SyntheticProblemSpec spec;
  spec.cores = cores;
  spec.serial_jobs = jobs;
  spec.seed = seed;
  return build_synthetic_problem(spec);
}

/// Random mix of serial and PE jobs.
inline Problem random_pe_problem(std::int32_t serial,
                                 std::vector<std::int32_t> parallel_sizes,
                                 std::uint32_t cores, std::uint64_t seed) {
  SyntheticProblemSpec spec;
  spec.cores = cores;
  spec.serial_jobs = serial;
  spec.parallel_job_sizes = std::move(parallel_sizes);
  spec.seed = seed;
  return build_synthetic_problem(spec);
}

/// Random mix with PC jobs (2D decomposition, comm volumes sized so the
/// comm term is of the same order as contention).
inline Problem random_pc_problem(std::int32_t serial,
                                 std::vector<std::int32_t> parallel_sizes,
                                 std::uint32_t cores, std::uint64_t seed) {
  SyntheticProblemSpec spec;
  spec.cores = cores;
  spec.serial_jobs = serial;
  spec.parallel_job_sizes = std::move(parallel_sizes);
  spec.parallel_with_comm = true;
  spec.seed = seed;
  return build_synthetic_problem(spec);
}

}  // namespace cosched::testhelpers
