// Tests for the sharded deployment (src/shard): consistent-hash routing
// through ShardRouter, the deterministic-replay Σ invariant (fan-in totals
// exactly equal the sum of per-shard values, per-shard CSVs byte-identical
// to isolated replays of the routed partitions), load-aware spillover with
// remap stickiness, global job-id resolution, the RouterServer TCP front
// (same wire contract as CoschedServer, including v1 back-compat), the
// combined /metrics fleet page, and the observability fan-in: trace-id
// propagation across the router -> RemoteShard -> shard-server hops with
// merged TraceDump output, the /healthz liveness fold, and the per-kind
// RPC failure counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/alerts.hpp"
#include "obs/trace.hpp"
#include "online/scheduler.hpp"
#include "online/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "shard/router.hpp"
#include "shard/router_server.hpp"

namespace cosched {
namespace {

OnlineSchedulerOptions shard_fleet() {
  OnlineSchedulerOptions options;
  options.cores = 2;
  options.machines = 2;
  options.admission.every_k = 2;
  options.log_process_finish = true;
  return options;
}

LiveServiceOptions shard_service() {
  LiveServiceOptions options;
  options.wall_clock = false;
  options.scheduler = shard_fleet();
  return options;
}

/// Multi-tenant mix: job names carry a tenant prefix so the router has
/// something to hash; arrival times ascend globally (hence per shard).
WorkloadTrace tenant_trace(std::uint64_t seed, std::int32_t jobs = 24,
                           int tenants = 6) {
  TraceSpec spec;
  spec.job_count = jobs;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = seed;
  WorkloadTrace trace = generate_trace(spec);
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].name = "tenant" + std::to_string(i % tenants) + "/" +
                         trace.jobs[i].name;
  }
  return trace;
}

RouterOptions ring_only_router() {
  RouterOptions options;
  options.spill_queue_depth = 0;        // spillover off:
  options.spill_replan_p95_seconds = 0; // routing = pure consistent hashing
  return options;
}

void build_fleet(ShardRouter& router, int shards) {
  for (int i = 0; i < shards; ++i) router.add_local_shard(shard_service());
}

// ------------------------------------------------------------- routing

TEST(ShardRouter, TenantKeyIsThePrefix) {
  EXPECT_EQ(ShardRouter::tenant_key("tenantA/lu.C.4"), "tenantA");
  EXPECT_EQ(ShardRouter::tenant_key("solo-job"), "solo-job");
  EXPECT_EQ(ShardRouter::tenant_key("a/b/c"), "a");
}

TEST(ShardRouter, GlobalJobIdsEncodeTheShard) {
  ShardRouter router(ring_only_router());
  build_fleet(router, 3);
  WorkloadTrace trace = tenant_trace(11);
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    std::string error;
    ASSERT_EQ(router.submit(job, ack, error), RpcStatus::Ok) << error;
    ASSERT_GE(ack.shard_id, 0);
    // global = local * N + shard: the ack's shard is recoverable from the
    // id alone, and status queries route without a lookup table.
    EXPECT_EQ(ack.job_id % 3, ack.shard_id);
    EXPECT_EQ(ack.shard_id, router.ring_shard(job.name));

    JobStatusResponse status;
    ASSERT_EQ(router.job_status(ack.job_id, status, error), RpcStatus::Ok)
        << error;
    EXPECT_TRUE(status.found);
    EXPECT_EQ(status.status.name, job.name);
    EXPECT_EQ(status.status.id, ack.job_id);
  }
  std::string error;
  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, error), RpcStatus::Ok) << error;
  EXPECT_EQ(drained.completions,
            static_cast<std::uint64_t>(trace.job_count()));
}

// THE acceptance criterion of the sharded deployment: after a deterministic
// replay, every fan-in total equals the sum of its per-shard entries, and
// each shard's deterministic CSV is byte-identical to an isolated
// OnlineScheduler replay of exactly the jobs the ring routed there.
TEST(ShardRouter, FanInTotalsEqualSumOfShardsByteForByte) {
  const int kShards = 3;
  WorkloadTrace trace = tenant_trace(21, 30);

  ShardRouter router(ring_only_router());
  build_fleet(router, kShards);

  // Reference: partition the trace by the ring (pure hashing — spillover is
  // off) and replay each partition on an identical isolated fleet.
  std::vector<WorkloadTrace> partitions(kShards);
  for (const TraceJob& job : trace.jobs)
    partitions[static_cast<std::size_t>(router.ring_shard(job.name))]
        .jobs.push_back(job);
  std::ostringstream expected_csv;
  std::vector<std::uint64_t> expected_replans(kShards);
  for (int s = 0; s < kShards; ++s) {
    OnlineScheduler reference(shard_fleet());
    reference.run(partitions[static_cast<std::size_t>(s)]);
    expected_csv << "# shard " << s << "\n"
                 << reference.metrics().render_deterministic_csv();
    expected_replans[static_cast<std::size_t>(s)] =
        reference.metrics().replans();
  }

  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    std::string error;
    ASSERT_EQ(router.submit(job, ack, error), RpcStatus::Ok) << error;
  }
  std::string error;
  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, error), RpcStatus::Ok) << error;

  MetricsResponse fleet;
  ASSERT_EQ(router.metrics(fleet, error), RpcStatus::Ok) << error;
  ASSERT_EQ(fleet.shards.size(), static_cast<std::size_t>(kShards));

  // Σ invariant: totals are exactly the sums of the entries they ship with.
  std::uint64_t arrivals = 0, admissions = 0, completions = 0, replans = 0,
                migrations = 0, requests = 0;
  for (const ShardMetricsEntry& entry : fleet.shards) {
    arrivals += entry.arrivals;
    admissions += entry.admissions;
    completions += entry.completions;
    replans += entry.replans;
    migrations += entry.migrations;
    requests += entry.requests;
  }
  EXPECT_EQ(fleet.arrivals, arrivals);
  EXPECT_EQ(fleet.admissions, admissions);
  EXPECT_EQ(fleet.completions, completions);
  EXPECT_EQ(fleet.replans, replans);
  EXPECT_EQ(fleet.migrations, migrations);
  EXPECT_EQ(fleet.completions, static_cast<std::uint64_t>(trace.job_count()));
  EXPECT_EQ(requests, router.stats().requests);
  EXPECT_EQ(requests, static_cast<std::uint64_t>(trace.job_count()));

  // Byte-identical to the isolated replays: sharding changed *where* jobs
  // ran, not *what* each shard computed.
  EXPECT_EQ(fleet.deterministic_csv, expected_csv.str());
  for (int s = 0; s < kShards; ++s)
    EXPECT_EQ(fleet.shards[static_cast<std::size_t>(s)].replans,
              expected_replans[static_cast<std::size_t>(s)]);

  // No spillover happened (it was off): the router accounting says so.
  EXPECT_EQ(fleet.router_spillovers, 0u);
  EXPECT_EQ(fleet.router_remapped_keys, 0u);
}

// ------------------------------------------------------------ spillover

TEST(ShardRouter, SpilloverReroutesHotShardAndSticks) {
  RouterOptions options;
  options.spill_queue_depth = 4;
  ShardRouter router(options);
  build_fleet(router, 3);

  // A tenant whose ring home is shard 0 (scan until found — placement is
  // deterministic, so this terminates at the same name every run).
  std::string tenant;
  for (int i = 0;; ++i) {
    tenant = "hot-tenant-" + std::to_string(i);
    if (router.ring_shard(tenant + "/job") == 0) break;
  }

  // Pretend shard 0 is buried: queue depth over the threshold.
  LoadProbe hot;
  hot.queue_depth = 32;
  router.set_load_probe_override(0, hot);

  TraceJob job;
  job.name = tenant + "/job-a";
  job.work = 4.0;
  SubmitJobResponse ack;
  std::string error;
  ASSERT_EQ(router.submit(job, ack, error), RpcStatus::Ok) << error;
  EXPECT_NE(ack.shard_id, 0);  // spilled off the hot ring shard
  std::int32_t new_home = ack.shard_id;

  RouterStats stats = router.stats();
  EXPECT_EQ(stats.spillovers, 1u);
  EXPECT_EQ(stats.remapped_keys, 1u);

  // The remap sticks: even after shard 0 cools down, the tenant stays on
  // its new home (QueryJobStatus keeps resolving, placements stay stable).
  router.set_load_probe_override(0, LoadProbe{}, /*enabled=*/false);
  TraceJob second;
  second.name = tenant + "/job-b";
  second.work = 4.0;
  second.arrival_time = 1.0;
  SubmitJobResponse ack2;
  ASSERT_EQ(router.submit(second, ack2, error), RpcStatus::Ok) << error;
  EXPECT_EQ(ack2.shard_id, new_home);
  EXPECT_EQ(router.stats().spillovers, 1u);  // no second spill

  // Other tenants still follow the ring.
  std::string cold;
  for (int i = 0;; ++i) {
    cold = "cold-tenant-" + std::to_string(i);
    if (router.ring_shard(cold + "/job") != 0) break;
  }
  TraceJob third;
  third.name = cold + "/job";
  third.work = 4.0;
  third.arrival_time = 2.0;
  SubmitJobResponse ack3;
  ASSERT_EQ(router.submit(third, ack3, error), RpcStatus::Ok) << error;
  EXPECT_EQ(ack3.shard_id, router.ring_shard(third.name));

  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, error), RpcStatus::Ok) << error;
  // The fan-in reports the spillover accounting.
  MetricsResponse fleet;
  ASSERT_EQ(router.metrics(fleet, error), RpcStatus::Ok) << error;
  EXPECT_EQ(fleet.router_spillovers, 1u);
  EXPECT_EQ(fleet.router_remapped_keys, 1u);
}

// v7 explainability through the front door: the router resolves the owning
// shard from the global id, rewrites the shard's journal events into the
// global id domain, and prepends its own spillover attribution at time 0.
TEST(ShardRouter, JobTimelineRewritesIdsAndMergesSpillover) {
  RouterOptions options;
  options.spill_queue_depth = 4;
  ShardRouter router(options);
  build_fleet(router, 3);

  // A tenant homed on shard 0, then shard 0 buried: the submit spills.
  std::string tenant;
  for (int i = 0;; ++i) {
    tenant = "spilled-tenant-" + std::to_string(i);
    if (router.ring_shard(tenant + "/job") == 0) break;
  }
  LoadProbe hot;
  hot.queue_depth = 32;
  router.set_load_probe_override(0, hot);

  TraceJob job;
  job.name = tenant + "/job";
  job.work = 4.0;
  SubmitJobResponse ack;
  std::string error;
  ASSERT_EQ(router.submit(job, ack, error), RpcStatus::Ok) << error;
  ASSERT_NE(ack.shard_id, 0);

  // A second, ring-homed tenant submitted before the drain (drained shards
  // refuse admissions): its timeline must carry no spillover event.
  router.set_load_probe_override(0, LoadProbe{}, /*enabled=*/false);
  std::string cold;
  for (int i = 0;; ++i) {
    cold = "ring-tenant-" + std::to_string(i);
    if (router.ring_shard(cold + "/job") != 0) break;
  }
  TraceJob ringed;
  ringed.name = cold + "/job";
  ringed.work = 4.0;
  ringed.arrival_time = 1.0;
  SubmitJobResponse ack2;
  ASSERT_EQ(router.submit(ringed, ack2, error), RpcStatus::Ok) << error;

  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, error), RpcStatus::Ok) << error;

  JobTimelineResponse reply;
  ASSERT_EQ(router.job_timeline(ack.job_id, reply, error), RpcStatus::Ok)
      << error;
  EXPECT_EQ(reply.job_id, ack.job_id);
  ASSERT_GE(reply.events.size(), 4u);  // spillover + admission + ...

  // The router's spillover event leads the merged timeline, timestamped
  // 0.0 so the ordering invariant holds across clock domains.
  const JournalEvent& spill = reply.events.front();
  EXPECT_EQ(spill.kind, JournalEventKind::Spillover);
  EXPECT_EQ(spill.time, 0.0);
  EXPECT_EQ(spill.job_id, ack.job_id);
  EXPECT_EQ(spill.machine, ack.shard_id);  // machine = chosen shard
  EXPECT_EQ(spill.candidates, 3);
  EXPECT_EQ(spill.policy, "least_loaded");
  EXPECT_NE(spill.detail.find("ring_shard=0"), std::string::npos)
      << spill.detail;

  // Every shard-side event was rewritten into the global id domain: ids
  // ≡ shard (mod N), times ascending after the router's epoch-0 events.
  for (std::size_t i = 1; i < reply.events.size(); ++i) {
    const JournalEvent& event = reply.events[i];
    if (event.job_id >= 0) EXPECT_EQ(event.job_id % 3, ack.shard_id);
    for (std::int64_t co : event.co_runners)
      EXPECT_EQ(co % 3, ack.shard_id);
    EXPECT_GE(event.time, reply.events[i - 1].time);
  }

  // Unknown ids answer UnknownJob; the ring-homed tenant's timeline
  // carries no spillover event.
  EXPECT_EQ(router.job_timeline(-1, reply, error), RpcStatus::UnknownJob);
  JobTimelineResponse ring_reply;
  ASSERT_EQ(router.job_timeline(ack2.job_id, ring_reply, error),
            RpcStatus::Ok)
      << error;
  for (const JournalEvent& event : ring_reply.events)
    EXPECT_NE(event.kind, JournalEventKind::Spillover);
}

TEST(ShardRouter, RemapTableIsBounded) {
  RouterOptions options;
  options.spill_queue_depth = 1;
  options.max_remap_entries = 2;
  ShardRouter router(options);
  build_fleet(router, 2);

  // Both shards' ring homes run hot; every new tenant wants to spill, but
  // only two remaps fit.
  LoadProbe hot;
  hot.queue_depth = 16;
  router.set_load_probe_override(0, hot);
  LoadProbe cool;  // shard 1 looks idle -> it is always the spill target
  router.set_load_probe_override(1, cool);

  int spilled = 0, refused = 0;
  for (int i = 0; i < 8; ++i) {
    std::string name = "bounded-" + std::to_string(i) + "/j";
    if (router.ring_shard(name) != 0) continue;  // only shard-0 tenants spill
    TraceJob job;
    job.name = name;
    job.work = 2.0;
    job.arrival_time = static_cast<Real>(i);
    SubmitJobResponse ack;
    std::string error;
    ASSERT_EQ(router.submit(job, ack, error), RpcStatus::Ok) << error;
    if (ack.shard_id == 1)
      ++spilled;
    else
      ++refused;  // at the cap the key stays on its ring shard
  }
  RouterStats stats = router.stats();
  EXPECT_LE(stats.remapped_keys, 2u);
  EXPECT_EQ(stats.spillovers, stats.remapped_keys);
  if (spilled > 2) {
    // More than the cap reached shard 1 only if several tenants shared a
    // remap entry; the table itself must still be bounded.
    EXPECT_LE(stats.remapped_keys, 2u);
  }
  if (refused > 0) EXPECT_GT(stats.remap_refused, 0u);

  std::string error;
  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, error), RpcStatus::Ok) << error;
}

// ------------------------------------------------------- TCP front door

TEST(RouterServer, ServesShardedFleetOverTcp) {
  ShardRouter router(ring_only_router());
  build_fleet(router, 2);
  RouterServerOptions options;
  options.enable_http = true;
  RouterServer server(router, options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ASSERT_NE(server.port(), 0);
  ASSERT_NE(server.http_port(), 0);

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);

  WorkloadTrace trace = tenant_trace(31, 16);
  std::map<std::int64_t, std::string> submitted;
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    RpcError rpc = client.submit_job(job, ack);
    ASSERT_TRUE(rpc.ok()) << rpc.describe();
    ASSERT_GE(ack.shard_id, 0);  // v5 ack carries the routed shard
    EXPECT_LT(ack.shard_id, 2);
    EXPECT_EQ(ack.job_id % 2, ack.shard_id);
    submitted[ack.job_id] = job.name;
  }

  // Global ids resolve through the front door.
  for (const auto& [job_id, name] : submitted) {
    JobStatusResponse status;
    RpcError rpc = client.query_job_status(job_id, status);
    ASSERT_TRUE(rpc.ok()) << rpc.describe();
    EXPECT_EQ(status.status.name, name);
  }
  JobStatusResponse missing;
  RpcError unknown = client.query_job_status(99991, missing);
  EXPECT_EQ(unknown.app, RpcStatus::UnknownJob);

  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions,
            static_cast<std::uint64_t>(trace.job_count()));

  // Fan-in over the wire: entries for both shards, Σ invariant holds, and
  // the aggregated request count equals the sum of per-shard counts.
  MetricsResponse fleet;
  ASSERT_TRUE(client.get_metrics(fleet).ok());
  ASSERT_EQ(fleet.shards.size(), 2u);
  std::uint64_t completions = 0, requests = 0;
  for (const ShardMetricsEntry& entry : fleet.shards) {
    completions += entry.completions;
    requests += entry.requests;
  }
  EXPECT_EQ(fleet.completions, completions);
  EXPECT_EQ(requests, static_cast<std::uint64_t>(trace.job_count()));

  // Merged snapshot: both shards' machines, global ids only.
  ServiceSnapshot snapshot;
  ASSERT_TRUE(client.query_snapshot(snapshot).ok());
  EXPECT_EQ(snapshot.machines.size(), 4u);  // 2 shards x 2 machines

  server.stop();
}

TEST(RouterServer, FleetMetricsPageMergesShards) {
  ShardRouter router(ring_only_router());
  build_fleet(router, 2);
  RouterServer server(router, RouterServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  client.set_trace_id(0xABCD);  // lands as the latency exemplar's trace
  WorkloadTrace trace = tenant_trace(41, 12);
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    ASSERT_TRUE(client.submit_job(job, ack).ok());
  }

  // Fetch the fleet page over HTTP.
  NetStatus net = NetStatus::Ok;
  Deadline deadline = Deadline::after(5.0);
  Socket http = Socket::connect_to("127.0.0.1", server.http_port(), deadline,
                                   net);
  ASSERT_EQ(net, NetStatus::Ok);
  std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(http.send_all(request.data(), request.size(), deadline),
            NetStatus::Ok);
  http.shutdown_send();
  std::string page;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus rs = http.recv_some(chunk, sizeof(chunk), got, deadline);
    if (rs == NetStatus::Closed) break;
    ASSERT_EQ(rs, NetStatus::Ok);
    page.append(chunk, got);
  }
  EXPECT_EQ(page.rfind("HTTP/1.0 200", 0), 0u) << page;

  // Router counters, per-shard gauges, and the merged latency histogram.
  EXPECT_NE(page.find("cosched_router_requests_total 12"), std::string::npos)
      << page;
  EXPECT_NE(page.find("cosched_router_shard_requests_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(page.find("cosched_router_shard_requests_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(page.find("cosched_router_shard_queue_depth{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(page.find("cosched_router_request_seconds_count 12"),
            std::string::npos)
      << page;
  // Exemplars survive the per-shard merge onto the fleet page.
  EXPECT_NE(page.find("trace_id=\"000000000000abcd\""), std::string::npos)
      << page;

  std::string err;
  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, err), RpcStatus::Ok) << err;
  server.stop();
}

// The router speaks the whole version range: a v1 peer gets exactly the v1
// bytes (no shard block anywhere), same as against a CoschedServer.
TEST(RouterServer, V1PeerSeesNoShardBytes) {
  ShardRouter router(ring_only_router());
  build_fleet(router, 2);
  RouterServer server(router, RouterServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  // v1 SubmitJob: the ack must end after the v1..v4 fields — no shard id.
  TraceJob job;
  job.name = "tenantX/compat";
  job.work = 4.0;
  WireWriter body;
  encode_trace_job(body, job);
  RequestEnvelope request;
  request.version = 1;
  request.type = MessageType::SubmitJob;
  request.request_id = 7;
  request.body = body.take();
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);
  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.version, 1);
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;
  WireReader r(response.body);
  SubmitJobResponse ack;
  ack.shard_id = 99;  // decoder must reset to the -1 default
  ASSERT_TRUE(decode_submit_response(r, ack));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(ack.shard_id, -1);
  // The job still routed somewhere real; the global id proves it.
  EXPECT_GE(ack.job_id, 0);

  // v1 GetMetrics: body ends after the v1 fields; the fan-in block (and
  // every other extension) stays off the wire.
  RequestEnvelope metrics_request;
  metrics_request.version = 1;
  metrics_request.type = MessageType::GetMetrics;
  metrics_request.request_id = 8;
  ASSERT_EQ(write_frame(raw, encode_request(metrics_request),
                        Deadline::after(2.0)),
            FrameStatus::Ok);
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.version, 1);
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;
  WireReader mr(response.body);
  MetricsResponse metrics;
  metrics.command_queue_depth = 123;  // decoder must reset defaults
  metrics.shards.push_back({});
  ASSERT_TRUE(decode_metrics_response(mr, metrics));
  EXPECT_EQ(mr.remaining(), 0u);
  EXPECT_EQ(metrics.shard_id, -1);
  EXPECT_EQ(metrics.command_queue_depth, 0u);
  EXPECT_TRUE(metrics.shards.empty());

  std::string err;
  DrainResponse drained;
  ASSERT_EQ(router.drain(drained, err), RpcStatus::Ok) << err;
  server.stop();
}

// --------------------------------------- observability fan-in (v6)

/// A shard CoschedServer the router can adopt with add_remote_shard:
/// RPC-addressable (shard_id set), virtual clock, no HTTP side door.
ServerOptions shard_server_options(std::int32_t shard_id) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral
  options.enable_http = false;
  options.shard_id = shard_id;
  options.service = shard_service();
  return options;
}

/// Minimal HTTP/1.0 GET; returns the whole response (status line included).
std::string http_get(std::uint16_t port, const std::string& path) {
  NetStatus net = NetStatus::Ok;
  Deadline deadline = Deadline::after(10.0);
  Socket socket = Socket::connect_to("127.0.0.1", port, deadline, net);
  if (net != NetStatus::Ok) return "";
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok)
    return "";
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus status = socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (status != NetStatus::Ok) break;
    response.append(chunk, got);
  }
  return response;
}

// THE tentpole acceptance criterion: a client-chosen trace id survives the
// client -> RouterServer -> RemoteShard -> shard CoschedServer hops (two
// wire crossings) and lands on the shard's replan spans; the router's
// TraceDump fan-in then pulls the shard's own dump, namespaces it
// "shard0/", and merges the Chrome exports with the flow events intact —
// one Perfetto load shows the router span and the shard replan span
// joined by the shared id.
TEST(RouterObservability, TraceIdStitchesRouterAndShardTimelines) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);

  CoschedServer shard_server(shard_server_options(0));
  std::string error;
  ASSERT_TRUE(shard_server.start(error)) << error;

  ShardRouter router(ring_only_router());
  ClientOptions remote;
  remote.port = shard_server.port();
  router.add_remote_shard(remote, /*total_cores=*/4);

  RouterServer front(router, RouterServerOptions{});
  ASSERT_TRUE(front.start(error)) << error;

  ClientOptions client_options;
  client_options.port = front.port();
  CoschedClient client(client_options);
  const std::uint64_t kTraceId = 0xBEEF;
  client.set_trace_id(kTraceId);

  WorkloadTrace trace = tenant_trace(61, 8);
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    RpcError rpc = client.submit_job(job, ack);
    ASSERT_TRUE(rpc.ok()) << rpc.describe();
    EXPECT_EQ(ack.shard_id, 0);  // the only shard
  }
  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions,
            static_cast<std::uint64_t>(trace.job_count()));

  // v6 GetMetrics carries the health block over the wire: the shard
  // answered every fan-in call, so it reports up with zero failures.
  MetricsResponse fleet;
  ASSERT_TRUE(client.get_metrics(fleet).ok());
  ASSERT_EQ(fleet.shard_health.size(), 1u);
  EXPECT_EQ(fleet.shard_health[0].shard_id, 0);
  EXPECT_TRUE(fleet.shard_health[0].up);
  EXPECT_EQ(fleet.shard_health[0].transport_errors, 0u);

  TraceDumpResponse dump;
  RpcError rpc = client.trace_dump(dump);
  tracer.set_enabled(false);
  ASSERT_TRUE(rpc.ok()) << rpc.describe();
  EXPECT_TRUE(dump.enabled);

  // The router's own request span is in the local section of the merge...
  EXPECT_NE(dump.text.find("span router.request"), std::string::npos)
      << dump.text;
  // ...and the shard's replan span sits in the namespaced remote section
  // AND carries the client's id: the namespacing proves the fan-in pulled
  // the remote dump, the id proves it crossed both wire hops (the shard's
  // scheduler thread replays the context captured from the forwarded RPC).
  const std::string want_trace = "trace=" + std::to_string(kTraceId);
  bool shard_replan_carries_id = false;
  std::istringstream lines(dump.text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("span shard0/online.replan") != std::string::npos &&
        line.find(want_trace) != std::string::npos)
      shard_replan_carries_id = true;
  }
  EXPECT_TRUE(shard_replan_carries_id) << dump.text;
  // The shard's request spans are tagged with its shard id.
  EXPECT_NE(dump.text.find("span shard0/rpc.request"), std::string::npos);
  EXPECT_NE(dump.text.find("shard=0]"), std::string::npos);

  // Merged Chrome export: shard records moved to pid 2 with namespaced
  // names, flow events kept their (cat, name, id) so Perfetto draws the
  // router (pid 1) -> shard (pid 2) arrows for the shared trace id.
  EXPECT_NE(dump.chrome_json.find("\"name\":\"shard0/online.replan\""),
            std::string::npos);
  EXPECT_NE(dump.chrome_json.find("\"pid\":2,"), std::string::npos);
  EXPECT_NE(dump.chrome_json.find("\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
                                  std::to_string(kTraceId)),
            std::string::npos);
  EXPECT_EQ(dump.chrome_json.find("\"name\":\"shard0/trace\""),
            std::string::npos);

  front.stop();
  shard_server.stop();
}

TEST(RouterObservability, HealthFanInTracksShardLiveness) {
  CoschedServer shard_server(shard_server_options(1));
  std::string error;
  ASSERT_TRUE(shard_server.start(error)) << error;

  RouterOptions options = ring_only_router();
  // A huge staleness bound makes the cache behaviour deterministic: only
  // the explicit health(0.0) calls below re-probe.
  options.health_max_age_seconds = 600.0;
  ShardRouter router(options);
  router.add_local_shard(shard_service());  // shard 0: up by construction
  ClientOptions remote;
  remote.port = shard_server.port();
  remote.request_timeout_seconds = 5.0;
  router.add_remote_shard(remote, 4);  // shard 1

  FleetHealth healthy = router.health(0.0);  // force a probe of both
  EXPECT_EQ(healthy.state, FleetHealth::State::Ok);
  EXPECT_EQ(healthy.shards_up, 2u);
  ASSERT_EQ(healthy.shards.size(), 2u);
  EXPECT_TRUE(healthy.shards[0].local);
  EXPECT_FALSE(healthy.shards[1].local);
  EXPECT_TRUE(healthy.shards[1].up);
  EXPECT_TRUE(healthy.shards[1].error.empty());
  std::string json = ShardRouter::health_json(healthy);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards_total\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"backend\":\"remote\""), std::string::npos) << json;

  // The Prometheus page carries liveness gauges and per-kind counters.
  std::string page = router.render_prometheus();
  EXPECT_NE(page.find("cosched_shard_up{shard=\"0\"} 1"), std::string::npos)
      << page;
  EXPECT_NE(page.find("cosched_shard_up{shard=\"1\"} 1"), std::string::npos);
  EXPECT_NE(
      page.find(
          "cosched_shard_rpc_errors_total{shard=\"1\",kind=\"transport\"} 0"),
      std::string::npos)
      << page;

  // Kill the shard server. A fresh-enough verdict still answers from the
  // cache (bounded staleness: scrape storms cannot become probe storms)...
  shard_server.stop();
  FleetHealth cached = router.health(600.0);
  EXPECT_EQ(cached.state, FleetHealth::State::Ok);

  // ...but a forced re-probe sees it down and folds the fleet degraded.
  FleetHealth degraded = router.health(0.0);
  EXPECT_EQ(degraded.state, FleetHealth::State::Degraded);
  EXPECT_EQ(degraded.shards_up, 1u);
  EXPECT_TRUE(degraded.shards[0].up);
  EXPECT_FALSE(degraded.shards[1].up);
  EXPECT_FALSE(degraded.shards[1].error.empty());
  json = ShardRouter::health_json(degraded);
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"up\":false"), std::string::npos) << json;
  // The failed probe was counted under its error kind.
  EXPECT_GT(router.shard(1).rpc_errors().transport, 0u);
  page = router.render_prometheus();
  EXPECT_NE(page.find("cosched_shard_up{shard=\"1\"} 0"), std::string::npos)
      << page;
}

TEST(RouterObservability, HealthzAnswers503OnlyWhenTheFleetIsDown) {
  RouterServerOptions http_options;
  http_options.enable_http = true;

  // Live fleet: one local shard -> 200 with the ok verdict in the body.
  ShardRouter healthy_router(ring_only_router());
  healthy_router.add_local_shard(shard_service());
  RouterServer healthy_front(healthy_router, http_options);
  std::string error;
  ASSERT_TRUE(healthy_front.start(error)) << error;
  std::string response = http_get(healthy_front.http_port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.0 200", 0), 0u) << response;
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  // The profiler side door serves collapsed stacks on the same endpoint.
  std::string profile = http_get(healthy_front.http_port(), "/debug/profile");
  EXPECT_EQ(profile.rfind("HTTP/1.0 200", 0), 0u) << profile;
  healthy_front.stop();

  // Dead fleet: the only shard is a remote nobody listens on -> 503, so a
  // dumb LB probe fails over without parsing the JSON breakdown.
  CoschedServer ghost(shard_server_options(0));
  ASSERT_TRUE(ghost.start(error)) << error;
  std::uint16_t dead_port = ghost.port();
  ghost.stop();  // connections to the port are now refused

  ShardRouter down_router(ring_only_router());
  ClientOptions dead;
  dead.port = dead_port;
  dead.request_timeout_seconds = 2.0;
  down_router.add_remote_shard(dead, 4);
  RouterServer down_front(down_router, http_options);
  ASSERT_TRUE(down_front.start(error)) << error;
  response = http_get(down_front.http_port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.0 503", 0), 0u) << response;
  EXPECT_NE(response.find("\"status\":\"down\""), std::string::npos)
      << response;
  down_front.stop();
}

// v8 alert fan-in: the router's GetAlerts answers its own rules as
// shard_id -1 and stamps each remote shard's entries with that shard's
// index; local shards share the router's engine and contribute no
// duplicate rows. The /alerts page carries the same picture with shard
// labels.
TEST(RouterObservability, AlertFanInStampsShardIds) {
  if (kAlertsDisabled) GTEST_SKIP() << "alert engine compiled out";

  CoschedServer shard_server(shard_server_options(1));
  std::string error;
  ASSERT_TRUE(shard_server.start(error)) << error;

  ShardRouter router(ring_only_router());
  router.add_local_shard(shard_service());  // shard 0: local, skipped
  ClientOptions remote;
  remote.port = shard_server.port();
  router.add_remote_shard(remote, 4);  // shard 1: fanned in

  RouterServerOptions options;
  options.enable_http = true;
  RouterServer front(router, options);
  ASSERT_TRUE(front.start(error)) << error;

  ClientOptions client_options;
  client_options.port = front.port();
  CoschedClient client(client_options);

  AlertsResponse fleet;
  RpcError rpc = client.get_alerts(fleet);
  ASSERT_TRUE(rpc.ok()) << rpc.describe();
  EXPECT_TRUE(fleet.engine_enabled);
  EXPECT_EQ(fleet.firing, 0u);  // idle fleet: nothing burns
  // 2 default rules from the router itself + 2 from the remote shard.
  ASSERT_EQ(fleet.alerts.size(), 4u);
  std::size_t own = 0, stamped = 0;
  for (const AlertEntry& entry : fleet.alerts) {
    EXPECT_EQ(entry.state, 0) << entry.rule;
    if (entry.shard_id == -1)
      ++own;
    else if (entry.shard_id == 1)
      ++stamped;
  }
  EXPECT_EQ(own, 2u);
  EXPECT_EQ(stamped, 2u);

  // The /alerts page renders the same fan-in with shard labels; the JSON
  // variant is machine-readable for dashboards.
  std::string page = http_get(front.http_port(), "/alerts");
  EXPECT_EQ(page.rfind("HTTP/1.0 200", 0), 0u) << page;
  EXPECT_NE(page.find("alerts: 4 rules, 0 firing"), std::string::npos)
      << page;
  EXPECT_NE(page.find("shard=1"), std::string::npos) << page;
  std::string json = http_get(front.http_port(), "/alerts?format=json");
  EXPECT_NE(json.find("\"firing\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos) << json;

  // Nothing firing: /healthz stays ok and carries no firing_alerts block
  // (the key appears only when the watchdog is paging).
  std::string health = http_get(front.http_port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.0 200", 0), 0u) << health;
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_EQ(health.find("firing_alerts"), std::string::npos) << health;

  front.stop();
  shard_server.stop();
}

}  // namespace
}  // namespace cosched
