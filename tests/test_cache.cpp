// Unit tests for src/cache: LRU simulator, stack distance profiles, trace
// generation, the SDC competition, and the Eq. 14-15 CPU-time model.
#include <gtest/gtest.h>

#include "cache/cpu_time_model.hpp"
#include "cache/lru_cache_sim.hpp"
#include "cache/machine_config.hpp"
#include "cache/sdc_model.hpp"
#include "cache/stack_distance.hpp"
#include "cache/trace_gen.hpp"

namespace cosched {
namespace {

// ----------------------------------------------------- StackDistanceProfile

TEST(StackDistanceProfile, CountsHitsAndMisses) {
  StackDistanceProfile sdp(4);
  sdp.record_hit(1);
  sdp.record_hit(1);
  sdp.record_hit(4);
  sdp.record_miss();
  EXPECT_DOUBLE_EQ(sdp.total_hits(), 3.0);
  EXPECT_DOUBLE_EQ(sdp.misses(), 1.0);
  EXPECT_DOUBLE_EQ(sdp.total_accesses(), 4.0);
  EXPECT_DOUBLE_EQ(sdp.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(sdp.hits_at(1), 2.0);
  EXPECT_DOUBLE_EQ(sdp.hits_at(4), 1.0);
}

TEST(StackDistanceProfile, HitsBeyondReallocationRule) {
  StackDistanceProfile sdp({10, 5, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(sdp.hits_beyond(4), 0.0);
  EXPECT_DOUBLE_EQ(sdp.hits_beyond(2), 3.0);   // distances 3,4
  EXPECT_DOUBLE_EQ(sdp.hits_beyond(0), 18.0);  // everything
}

TEST(StackDistanceProfile, ScaledMultipliesAllCounters) {
  StackDistanceProfile sdp({4, 2}, 2);
  auto half = sdp.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.hits_at(1), 2.0);
  EXPECT_DOUBLE_EQ(half.misses(), 1.0);
  EXPECT_DOUBLE_EQ(half.miss_rate(), sdp.miss_rate());
}

TEST(StackDistanceProfile, RejectsInvalidInput) {
  EXPECT_THROW(StackDistanceProfile({1.0, -2.0}, 0.0), ContractViolation);
  StackDistanceProfile sdp(2);
  EXPECT_THROW(sdp.record_hit(0), ContractViolation);
  EXPECT_THROW(sdp.record_hit(3), ContractViolation);
}

// ---------------------------------------------------------------- LRU cache

TEST(LruCacheSim, HitAfterInstall) {
  LruCacheSim sim(CacheConfig{64, 4, 16});
  EXPECT_EQ(sim.access(100), 0u);  // cold miss
  EXPECT_EQ(sim.access(100), 1u);  // MRU hit
}

TEST(LruCacheSim, StackDistanceTracksLruDepth) {
  LruCacheSim sim(CacheConfig{64, 4, 1});  // single set, 4 ways
  sim.access(0);
  sim.access(1);
  sim.access(2);
  sim.access(3);
  // LRU order now: 3,2,1,0. Accessing 0 hits at depth 4.
  EXPECT_EQ(sim.access(0), 4u);
  // Now: 0,3,2,1. Accessing 3 hits at depth 2.
  EXPECT_EQ(sim.access(3), 2u);
}

TEST(LruCacheSim, EvictsLeastRecentlyUsed) {
  LruCacheSim sim(CacheConfig{64, 2, 1});  // 2 ways, 1 set
  sim.access(10);
  sim.access(20);
  sim.access(30);                // evicts 10
  EXPECT_EQ(sim.access(10), 0u); // 10 is gone -> miss
  EXPECT_EQ(sim.access(30), 2u); // still resident
}

TEST(LruCacheSim, SetsAreIndependent) {
  LruCacheSim sim(CacheConfig{64, 1, 4});  // direct-mapped, 4 sets
  sim.access(0);   // set 0
  sim.access(1);   // set 1
  sim.access(4);   // set 0 -> evicts line 0
  EXPECT_EQ(sim.access(1), 1u);  // set 1 untouched
  EXPECT_EQ(sim.access(0), 0u);  // evicted
}

TEST(LruCacheSim, SimulateCollectsSdp) {
  // Working set of 8 lines inside an 16-line fully-assoc-ish cache: after
  // the cold pass everything hits.
  std::vector<std::uint64_t> trace;
  for (int rep = 0; rep < 10; ++rep)
    for (std::uint64_t line = 0; line < 8; ++line) trace.push_back(line);
  auto res = LruCacheSim::simulate(CacheConfig{64, 16, 1}, trace);
  EXPECT_EQ(res.misses, 8u);  // compulsory only
  EXPECT_EQ(res.hits, 72u);
  EXPECT_DOUBLE_EQ(res.sdp.misses(), 8.0);
  // Cyclic access over 8 lines in a 16-way set: every hit at distance 8.
  EXPECT_DOUBLE_EQ(res.sdp.hits_at(8), 72.0);
}

TEST(LruCacheSim, ThrashingWorkingSetMissesAlways) {
  std::vector<std::uint64_t> trace;
  for (int rep = 0; rep < 5; ++rep)
    for (std::uint64_t line = 0; line < 8; ++line) trace.push_back(line);
  // 4-way single set, cyclic sequence of 8 lines: classic LRU thrash.
  auto res = LruCacheSim::simulate(CacheConfig{64, 4, 1}, trace);
  EXPECT_EQ(res.hits, 0u);
  EXPECT_EQ(res.misses, trace.size());
}

// ---------------------------------------------------------------- trace gen

TEST(TraceGenerator, DeterministicForSeed) {
  LocalitySpec spec;
  spec.regions.push_back({128, 1.0, 1, 0.1});
  TraceGenerator a(spec, 42), b(spec, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_line(), b.next_line());
}

TEST(TraceGenerator, RegionsAreDisjoint) {
  LocalitySpec spec;
  spec.regions.push_back({100, 1.0, 1, 0.0});
  spec.regions.push_back({100, 1.0, 1, 0.0});
  TraceGenerator gen(spec, 1);
  auto trace = gen.generate(10000);
  // Region 0 occupies [0,100), region 1 [164, 264) (64-line guard gap).
  for (auto line : trace) {
    EXPECT_TRUE(line < 100 || (line >= 164 && line < 264))
        << "address " << line << " outside any region";
  }
}

TEST(TraceGenerator, StreamingProducesFreshLines) {
  LocalitySpec spec;
  spec.regions.push_back({4, 1.0, 1, 0.0});
  spec.streaming_prob = 1.0;  // always stream
  TraceGenerator gen(spec, 3);
  auto trace = gen.generate(100);
  std::set<std::uint64_t> distinct(trace.begin(), trace.end());
  EXPECT_EQ(distinct.size(), trace.size());  // never reused
}

TEST(TraceGenerator, SmallRegionYieldsLowMissRate) {
  LocalitySpec spec;
  spec.regions.push_back({16, 1.0, 1, 0.0});
  TraceGenerator gen(spec, 9);
  auto res = LruCacheSim::simulate(CacheConfig{64, 16, 64}, gen.generate(20000));
  EXPECT_LT(res.miss_rate(), 0.01);
}

// ---------------------------------------------------------------------- SDC

TEST(SdcModel, WaysSumToAssociativity) {
  StackDistanceProfile a({10, 10, 10, 10}, 5);
  StackDistanceProfile b({1, 1, 1, 1}, 5);
  auto alloc = sdc_compete({&a, &b});
  EXPECT_EQ(alloc.ways[0] + alloc.ways[1], 4u);
}

TEST(SdcModel, HeavyReuserWinsMoreWays) {
  StackDistanceProfile heavy({100, 100, 100, 100}, 0);
  StackDistanceProfile light({1, 1, 1, 1}, 0);
  auto alloc = sdc_compete({&heavy, &light});
  EXPECT_GT(alloc.ways[0], alloc.ways[1]);
}

TEST(SdcModel, SoloProcessKeepsWholeCache) {
  StackDistanceProfile p({5, 4, 3, 2}, 1);
  auto alloc = sdc_compete({&p});
  EXPECT_EQ(alloc.ways[0], 4u);
  EXPECT_DOUBLE_EQ(sdc_corun_misses(p, alloc.ways[0]), p.misses());
}

TEST(SdcModel, CorunMissesNeverBelowSolo) {
  StackDistanceProfile a({10, 8, 6, 4}, 3);
  StackDistanceProfile b({9, 7, 5, 3}, 2);
  StackDistanceProfile c({1, 1, 1, 1}, 10);
  auto misses = sdc_predict_misses({&a, &b, &c});
  EXPECT_GE(misses[0], a.misses());
  EXPECT_GE(misses[1], b.misses());
  EXPECT_GE(misses[2], c.misses());
}

TEST(SdcModel, IdenticalProfilesSplitEvenly) {
  StackDistanceProfile a({10, 10, 10, 10}, 0);
  StackDistanceProfile b = a;
  auto alloc = sdc_compete({&a, &b});
  EXPECT_EQ(alloc.ways[0], 2u);
  EXPECT_EQ(alloc.ways[1], 2u);
}

TEST(SdcModel, MismatchedAssociativityRejected) {
  StackDistanceProfile a({1, 1}, 0);
  StackDistanceProfile b({1, 1, 1}, 0);
  EXPECT_THROW(sdc_compete({&a, &b}), ContractViolation);
}

// --------------------------------------------------------------- CPU timing

TEST(CpuTimeModel, Equation14) {
  MachineConfig m = quad_core_machine();
  ProgramTiming t{1000.0, 10.0};
  // (base + misses*penalty) * cct
  Real expected = (1000.0 + 50.0 * m.miss_penalty_cycles) *
                  m.clock_cycle_seconds();
  EXPECT_DOUBLE_EQ(cpu_time_seconds(t, 50.0, m), expected);
}

TEST(CpuTimeModel, DegradationZeroWhenMissesUnchanged) {
  MachineConfig m = quad_core_machine();
  ProgramTiming t{1000.0, 10.0};
  EXPECT_DOUBLE_EQ(degradation_from_misses(t, 10.0, m), 0.0);
}

TEST(CpuTimeModel, DegradationMatchesEq1) {
  MachineConfig m = quad_core_machine();
  ProgramTiming t{1000.0, 10.0};
  Real solo = cpu_time_seconds(t, 10.0, m);
  Real corun = cpu_time_seconds(t, 25.0, m);
  EXPECT_NEAR(degradation_from_misses(t, 25.0, m), (corun - solo) / solo,
              1e-12);
}

TEST(CpuTimeModel, NegativeDeltaClampsToZero) {
  MachineConfig m = quad_core_machine();
  ProgramTiming t{1000.0, 10.0};
  EXPECT_DOUBLE_EQ(degradation_from_misses(t, 5.0, m), 0.0);
}

// ------------------------------------------------------------ machine presets

TEST(MachineConfig, PresetGeometry) {
  EXPECT_EQ(dual_core_machine().shared_cache.size_bytes(), 4u << 20);
  EXPECT_EQ(quad_core_machine().shared_cache.size_bytes(), 8u << 20);
  EXPECT_EQ(eight_core_machine().shared_cache.size_bytes(), 20u << 20);
  EXPECT_EQ(machine_by_cores(2).cores, 2u);
  EXPECT_EQ(machine_by_cores(4).cores, 4u);
  EXPECT_EQ(machine_by_cores(8).cores, 8u);
  EXPECT_EQ(machine_by_cores(6).cores, 6u);  // generic fallback
}

}  // namespace
}  // namespace cosched
