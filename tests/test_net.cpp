// Tests for the transport layer (src/net): wire serialization round-trips,
// framing integrity, and fault injection — truncated frames, bad magic,
// oversized declarations, deadline expiry — over real loopback sockets.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace cosched {
namespace {

// ------------------------------------------------------------ wire

TEST(Wire, IntegersRoundTripBigEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123456789ll);
  w.boolean(true);
  std::vector<std::uint8_t> bytes = w.take();
  // Big-endian on the wire: the u16's high byte first.
  EXPECT_EQ(bytes[1], 0xBE);
  EXPECT_EQ(bytes[2], 0xEF);

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123456789ll);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.complete());
}

TEST(Wire, RealsRoundTripExactly) {
  const Real values[] = {0.0,
                         -0.0,
                         1.0 / 3.0,
                         -123.456789e-12,
                         std::numeric_limits<Real>::infinity(),
                         std::numeric_limits<Real>::denorm_min(),
                         std::numeric_limits<Real>::max()};
  WireWriter w;
  for (Real v : values) w.real(v);
  WireReader r(w.bytes());
  for (Real v : values) {
    Real got = r.real();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_TRUE(r.complete());
}

TEST(Wire, StringsRoundTripIncludingEmbeddedNul) {
  WireWriter w;
  w.str("");
  w.str(std::string("a\0b", 3));
  w.str("plain");
  WireReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("a\0b", 3));
  EXPECT_EQ(r.str(), "plain");
  EXPECT_TRUE(r.complete());
}

TEST(Wire, ReaderFailsClosedOnShortBuffer) {
  WireWriter w;
  w.u32(7);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.pop_back();
  WireReader r(bytes);
  EXPECT_EQ(r.u32(), 0u);  // zero after failure, never garbage
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.u64(), 0u);  // stays failed
}

TEST(Wire, ReaderRejectsLyingStringLength) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  WireReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, CompleteDetectsTrailingBytes) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.complete());  // one byte unread
}

// ------------------------------------------------------------ sockets

struct Loopback {
  Socket listener;
  Socket client;
  Socket server;

  static Loopback make() {
    Loopback lb;
    NetStatus status = NetStatus::Ok;
    lb.listener = Socket::listen_on("127.0.0.1", 0, 4, status);
    EXPECT_EQ(status, NetStatus::Ok);
    lb.client = Socket::connect_to("127.0.0.1", lb.listener.local_port(),
                                   Deadline::after(2.0), status);
    EXPECT_EQ(status, NetStatus::Ok);
    lb.server = lb.listener.accept_connection(Deadline::after(2.0), status);
    EXPECT_EQ(status, NetStatus::Ok);
    return lb;
  }
};

TEST(SocketTest, ConnectRefusedIsReported) {
  NetStatus status = NetStatus::Ok;
  Socket listener = Socket::listen_on("127.0.0.1", 0, 1, status);
  ASSERT_EQ(status, NetStatus::Ok);
  std::uint16_t dead_port = listener.local_port();
  listener.close();  // nobody listens here any more
  Socket c = Socket::connect_to("127.0.0.1", dead_port, Deadline::after(2.0),
                                status);
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(status, NetStatus::Refused);
}

TEST(SocketTest, AcceptTimesOutWithoutAPeer) {
  NetStatus status = NetStatus::Ok;
  Socket listener = Socket::listen_on("127.0.0.1", 0, 1, status);
  ASSERT_EQ(status, NetStatus::Ok);
  Socket conn = listener.accept_connection(Deadline::after(0.05), status);
  EXPECT_EQ(status, NetStatus::Timeout);
  EXPECT_FALSE(conn.valid());
}

TEST(SocketTest, SendRecvMoveBytesFaithfully) {
  Loopback lb = Loopback::make();
  std::vector<std::uint8_t> out(4096);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>(i * 31 + 7);
  ASSERT_EQ(lb.client.send_all(out.data(), out.size(), Deadline::after(2.0)),
            NetStatus::Ok);
  std::vector<std::uint8_t> in(out.size());
  ASSERT_EQ(lb.server.recv_all(in.data(), in.size(), Deadline::after(2.0)),
            NetStatus::Ok);
  EXPECT_EQ(in, out);
}

TEST(SocketTest, RecvReportsCleanPeerClose) {
  Loopback lb = Loopback::make();
  lb.client.close();
  std::uint8_t byte = 0;
  EXPECT_EQ(lb.server.recv_all(&byte, 1, Deadline::after(2.0)),
            NetStatus::Closed);
}

TEST(SocketTest, RecvTimesOutOnSilentPeer) {
  Loopback lb = Loopback::make();
  std::uint8_t byte = 0;
  EXPECT_EQ(lb.server.recv_all(&byte, 1, Deadline::after(0.05)),
            NetStatus::Timeout);
}

// ------------------------------------------------------------ framing

TEST(Frame, RoundTripsPayload) {
  Loopback lb = Loopback::make();
  std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  ASSERT_EQ(write_frame(lb.client, payload, Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> got;
  ASSERT_EQ(read_frame(lb.server, got, Deadline::after(2.0)), FrameStatus::Ok);
  EXPECT_EQ(got, payload);
}

TEST(Frame, EmptyPayloadIsLegal) {
  Loopback lb = Loopback::make();
  ASSERT_EQ(write_frame(lb.client, nullptr, 0, Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> got = {9, 9};
  ASSERT_EQ(read_frame(lb.server, got, Deadline::after(2.0)), FrameStatus::Ok);
  EXPECT_TRUE(got.empty());
}

TEST(Frame, CleanEofBetweenFramesIsClosed) {
  Loopback lb = Loopback::make();
  std::vector<std::uint8_t> payload = {7};
  ASSERT_EQ(write_frame(lb.client, payload, Deadline::after(2.0)),
            FrameStatus::Ok);
  lb.client.close();
  std::vector<std::uint8_t> got;
  ASSERT_EQ(read_frame(lb.server, got, Deadline::after(2.0)), FrameStatus::Ok);
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0)),
            FrameStatus::Closed);
}

TEST(Frame, TruncatedHeaderIsTruncatedNotClosed) {
  Loopback lb = Loopback::make();
  // 3 bytes of magic, then gone: mid-frame EOF.
  const std::uint8_t partial[] = {0x43, 0x53, 0x43};
  ASSERT_EQ(lb.client.send_all(partial, sizeof partial, Deadline::after(2.0)),
            NetStatus::Ok);
  lb.client.close();
  std::vector<std::uint8_t> got;
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0)),
            FrameStatus::Truncated);
}

TEST(Frame, TruncatedPayloadIsTruncated) {
  Loopback lb = Loopback::make();
  WireWriter w;
  w.u32(kFrameMagic);
  w.u32(100);  // declares 100 payload bytes...
  std::vector<std::uint8_t> header = w.take();
  header.push_back(1);  // ...delivers 3
  header.push_back(2);
  header.push_back(3);
  ASSERT_EQ(
      lb.client.send_all(header.data(), header.size(), Deadline::after(2.0)),
      NetStatus::Ok);
  lb.client.close();
  std::vector<std::uint8_t> got;
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0)),
            FrameStatus::Truncated);
}

TEST(Frame, GarbageMagicIsRejected) {
  Loopback lb = Loopback::make();
  WireWriter w;
  w.u32(0x48545450);  // "HTTP"
  w.u32(4);
  w.u32(0);
  ASSERT_EQ(lb.client.send_all(w.bytes().data(), w.bytes().size(),
                               Deadline::after(2.0)),
            NetStatus::Ok);
  std::vector<std::uint8_t> got;
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0)),
            FrameStatus::BadMagic);
}

TEST(Frame, OversizedDeclarationRejectedBeforeAllocation) {
  Loopback lb = Loopback::make();
  WireWriter w;
  w.u32(kFrameMagic);
  w.u32(0xFFFFFFFFu);  // 4 GiB claim; must not be trusted
  ASSERT_EQ(lb.client.send_all(w.bytes().data(), w.bytes().size(),
                               Deadline::after(2.0)),
            NetStatus::Ok);
  std::vector<std::uint8_t> got;
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0), 1024),
            FrameStatus::Oversized);
}

TEST(Frame, ReadTimesOutMidFrame) {
  Loopback lb = Loopback::make();
  WireWriter w;
  w.u32(kFrameMagic);
  w.u32(64);  // promises payload, never sends it
  ASSERT_EQ(lb.client.send_all(w.bytes().data(), w.bytes().size(),
                               Deadline::after(2.0)),
            NetStatus::Ok);
  std::vector<std::uint8_t> got;
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(0.05)),
            FrameStatus::Timeout);
}

TEST(Frame, ManyFramesBackToBack) {
  Loopback lb = Loopback::make();
  std::thread writer([&] {
    for (std::uint8_t i = 0; i < 50; ++i) {
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(i) * 7 + 1,
                                        i);
      ASSERT_EQ(write_frame(lb.client, payload, Deadline::after(5.0)),
                FrameStatus::Ok);
    }
    lb.client.shutdown_send();
  });
  std::vector<std::uint8_t> got;
  for (std::uint8_t i = 0; i < 50; ++i) {
    ASSERT_EQ(read_frame(lb.server, got, Deadline::after(5.0)),
              FrameStatus::Ok);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(i) * 7 + 1);
    for (std::uint8_t byte : got) EXPECT_EQ(byte, i);
  }
  EXPECT_EQ(read_frame(lb.server, got, Deadline::after(2.0)),
            FrameStatus::Closed);
  writer.join();
}

}  // namespace
}  // namespace cosched
