// Tests for the MER (maximum effective rank) instrumentation.
#include <gtest/gtest.h>

#include "astar/mer.hpp"
#include "astar/search.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_serial_problem;

TEST(Mer, RanksAreAtLeastOne) {
  Problem p = random_serial_problem(12, 4, 1);
  auto r = solve_oastar(p);
  ASSERT_TRUE(r.found);
  NodeEvaluator eval(p, *p.full_model);
  auto mer = compute_mer(eval, r.solution);
  ASSERT_EQ(mer.effective_ranks.size(), r.solution.machines.size());
  for (std::size_t k = 0; k < mer.ranks.size(); ++k) {
    EXPECT_GE(mer.ranks[k], 1);
    EXPECT_GE(mer.effective_ranks[k], 1);
    EXPECT_LE(mer.effective_ranks[k], mer.ranks[k]);
  }
  EXPECT_GE(mer.mer, 1);
}

TEST(Mer, LastLevelHasEffectiveRankOne) {
  // The final path node is the only valid node of its level once everything
  // else is scheduled, so its effective rank is 1.
  Problem p = random_serial_problem(8, 2, 2);
  auto r = solve_oastar(p);
  ASSERT_TRUE(r.found);
  NodeEvaluator eval(p, *p.full_model);
  auto mer = compute_mer(eval, r.solution);
  EXPECT_EQ(mer.effective_ranks.back(), 1);
}

TEST(Mer, GreedySchedulePathHasEffectiveRankOneEverywhere) {
  // A schedule built by always taking the cheapest valid node has effective
  // rank exactly 1 at every level — by construction.
  Problem p = random_serial_problem(12, 4, 3);
  SearchOptions opt;
  opt.mer_cap = 1;  // pure greedy HA*
  auto r = solve_hastar(p, opt);
  ASSERT_TRUE(r.found);
  NodeEvaluator eval(p, *p.full_model);
  auto mer = compute_mer(eval, r.solution);
  for (std::int32_t e : mer.effective_ranks) EXPECT_EQ(e, 1);
  EXPECT_EQ(mer.mer, 1);
}

TEST(Mer, MerIsASmallFractionOfTheLevelSize) {
  // Fig. 5 claims MER <= n/u for ~98% of the paper's random graphs. Under
  // our degradation models the optimal path's first node routinely ranks
  // much deeper (a documented reproduction finding, see EXPERIMENTS.md and
  // the fig5 bench, which reports the measured CDF): threshold-shaped
  // degradations discriminate strongly between co-runner sets, so the
  // globally balanced optimum does not hug each level's cheap end. What
  // remains robust — and what this test locks in — is that the optimum
  // sits in the cheaper half of the weight-sorted level on average (a
  // uniformly random node would average 50%), and that effective ranks
  // collapse toward 1 in later levels as invalid nodes accumulate.
  const int trials = 6;
  Real total_frac = 0.0;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Problem p = random_serial_problem(16, 4, 100 + seed);
    auto r = solve_oastar(p);
    ASSERT_TRUE(r.found);
    NodeEvaluator eval(p, *p.full_model);
    auto mer = compute_mer(eval, r.solution);
    // Level 1 holds C(15,3) = 455 nodes.
    total_frac += static_cast<Real>(mer.mer) / 455.0;
    EXPECT_EQ(mer.effective_ranks.back(), 1) << "seed " << seed;
  }
  EXPECT_LT(total_frac / trials, 0.50);
}

TEST(Mer, HaStarWithMerCapOfComputedMerReproducesOptimum) {
  // The paper's Section IV insight: had we known MER = k in advance,
  // attempting only the first k valid nodes per level still finds the
  // shortest path.
  Problem p = random_serial_problem(12, 4, 42);
  auto opt = solve_oastar(p);
  ASSERT_TRUE(opt.found);
  NodeEvaluator eval(p, *p.full_model);
  auto mer = compute_mer(eval, opt.solution);

  SearchOptions ha_opt;
  ha_opt.mer_cap = mer.mer;
  auto ha = solve_hastar(p, ha_opt);
  ASSERT_TRUE(ha.found);
  EXPECT_NEAR(ha.objective, opt.objective, 1e-9);
}

}  // namespace
}  // namespace cosched
