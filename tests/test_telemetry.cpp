// Tests for the continuous-observability layer (ISSUE 4): the tracer's
// bounded per-thread rings and head-based trace sampling, cursor-based
// telemetry collection, the v3 envelope trace_id, the SubscribeTelemetry
// wire codecs, and the end-to-end acceptance criterion — a client-supplied
// trace id shows up on the server's replan phase spans, solver search
// spans, the Chrome export's flow events and the streamed telemetry frames.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "online/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"

namespace cosched {
namespace {

/// Restores the global tracer to its out-of-the-box state; the tracer is a
/// process singleton, so every test that touches it cleans up through this.
void reset_global_tracer() {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.set_max_events_per_thread(65536);
  tracer.set_sample_every(1);
  tracer.set_always_keep({});
  Tracer::clear_current_context();
  tracer.reset();
}

// ------------------------------------------------------- bounded rings

TEST(TelemetryRing, EventCountPlateausAndDropsAreCounted) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_max_events_per_thread(64);

  for (int i = 0; i < 200; ++i) tracer.instant("tick");
  EXPECT_EQ(tracer.event_count(), 64u);  // plateau at the ring capacity
  EXPECT_EQ(tracer.dropped_events(), 200u - 64u);

  // Sustained load: the plateau holds, only the drop counter moves.
  for (int i = 0; i < 100; ++i) tracer.instant("tick");
  EXPECT_EQ(tracer.event_count(), 64u);
  EXPECT_EQ(tracer.dropped_events(), 300u - 64u);

  // The ring keeps the *newest* events: the survivors are the top of the
  // sequence range, oldest-first.
  Tracer::TelemetryBatch batch = tracer.collect_since(0, "", 0);
  ASSERT_EQ(batch.events.size(), 64u);
  EXPECT_EQ(batch.events.front().seq, 300u - 64u);
  EXPECT_EQ(batch.events.back().seq, 299u);

  // reset() empties the ring and zeroes drops, but the sequence counter
  // keeps climbing so telemetry cursors stay monotonic.
  std::uint64_t seq_before = tracer.current_seq();
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  tracer.instant("after");
  EXPECT_EQ(tracer.current_seq(), seq_before + 1);

  // Capacity 0 clamps to 1 instead of dividing by zero somewhere dark.
  tracer.set_max_events_per_thread(0);
  EXPECT_EQ(tracer.max_events_per_thread(), 1u);
}

// -------------------------------------------------- head-based sampling

TEST(TelemetrySampling, DeterministicPerTraceDecisionsAtTheConfiguredRate) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sample_every(4);
  tracer.set_sample_seed(123);

  int sampled = 0;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    TraceContext first = tracer.make_context(id);
    TraceContext second = tracer.make_context(id);
    EXPECT_EQ(first.sampled, second.sampled);  // decision is pure in id
    if (first.sampled) ++sampled;
  }
  // ~1-in-4 of 64 ids; the hash is uniform enough that the count cannot
  // collapse to "all" or "none".
  EXPECT_GE(sampled, 4);
  EXPECT_LE(sampled, 40);
  EXPECT_GT(tracer.sampled_out_traces(), 0u);

  // trace_id 0 ("no trace") and rate 1 are always sampled.
  EXPECT_TRUE(tracer.make_context(0).sampled);
  tracer.set_sample_every(1);
  for (std::uint64_t id = 1; id <= 8; ++id)
    EXPECT_TRUE(tracer.make_context(id).sampled);
}

TEST(TelemetrySampling, SampledOutTracesRecordNothingExceptAlwaysKeep) {
  reset_global_tracer();
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.set_sample_every(1000000);  // effectively: drop every trace
  tracer.set_sample_seed(7);
  tracer.set_always_keep({"replan."});

  std::uint64_t dropped_id = 0;
  for (std::uint64_t id = 1; id <= 64 && dropped_id == 0; ++id)
    if (!tracer.make_context(id).sampled) dropped_id = id;
  ASSERT_NE(dropped_id, 0u) << "no sampled-out id found in 64 tries";

  {
    TraceContextScope scope(tracer.make_context(dropped_id));
    { TraceSpan invisible("online.other"); }
    tracer.instant("other.tick");
    tracer.counter("other.widgets", 1.0);
    EXPECT_EQ(tracer.event_count(), 0u);  // the whole trace vanished

    // Always-keep prefixes survive even inside a dropped trace.
    { TraceSpan kept("replan.commit"); }
    tracer.instant("replan.tick");
    EXPECT_EQ(tracer.event_count(), 3u);  // begin + end + instant
  }

  // A sampled trace records everything again.
  tracer.set_sample_every(1);
  {
    TraceContextScope scope(tracer.make_context(99));
    { TraceSpan visible("online.other"); }
    EXPECT_EQ(tracer.event_count(), 5u);
  }

  reset_global_tracer();
}

// ---------------------------------------------- cursor-based collection

TEST(TelemetryCollect, CursorPrefixFilterAndDropOldest) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("alpha.one");
  tracer.instant("beta.one");
  tracer.instant("alpha.two");
  tracer.instant("beta.two");
  tracer.instant("alpha.three");

  // Prefix filter matches span names only, ascending by seq.
  Tracer::TelemetryBatch alphas = tracer.collect_since(0, "alpha", 0);
  ASSERT_EQ(alphas.events.size(), 3u);
  EXPECT_EQ(alphas.events[0].name, "alpha.one");
  EXPECT_EQ(alphas.events[2].name, "alpha.three");
  EXPECT_EQ(alphas.dropped, 0u);
  EXPECT_EQ(alphas.next_cursor, alphas.events.back().seq + 1);

  // Drop-oldest backpressure: a cap keeps the newest samples and counts
  // the shed backlog.
  Tracer::TelemetryBatch capped = tracer.collect_since(0, "", 3);
  ASSERT_EQ(capped.events.size(), 3u);
  EXPECT_EQ(capped.dropped, 2u);
  EXPECT_EQ(capped.events.front().name, "alpha.two");

  // Resuming from the cursor yields nothing new until new events arrive.
  Tracer::TelemetryBatch empty =
      tracer.collect_since(alphas.next_cursor, "alpha", 0);
  EXPECT_TRUE(empty.events.empty());
  tracer.instant("alpha.four");
  Tracer::TelemetryBatch fresh =
      tracer.collect_since(alphas.next_cursor, "alpha", 0);
  ASSERT_EQ(fresh.events.size(), 1u);
  EXPECT_EQ(fresh.events[0].name, "alpha.four");
}

// ------------------------------------------------------------ wire (v3)

TEST(TelemetryWire, EnvelopeTraceIdTravelsOnlyOnV3) {
  RequestEnvelope request;
  request.version = 3;
  request.type = MessageType::SubmitJob;
  request.request_id = 5;
  request.trace_id = 0xABCDEF;
  RequestEnvelope decoded;
  ASSERT_TRUE(decode_request(encode_request(request), decoded));
  EXPECT_EQ(decoded.trace_id, 0xABCDEFu);

  request.version = 2;
  ASSERT_TRUE(decode_request(encode_request(request), decoded));
  EXPECT_EQ(decoded.trace_id, 0u);  // v2 wires carry no trace id

  ResponseEnvelope response;
  response.version = 3;
  response.request_id = 5;
  response.trace_id = 0x1234;
  ResponseEnvelope out;
  ASSERT_TRUE(decode_response(encode_response(response), out));
  EXPECT_EQ(out.trace_id, 0x1234u);
  response.version = 2;
  ASSERT_TRUE(decode_response(encode_response(response), out));
  EXPECT_EQ(out.trace_id, 0u);
}

TEST(TelemetryWire, SubscribeCodecsRoundTrip) {
  TelemetrySubscribeRequest request;
  request.interval_ms = 25;
  request.max_frames = 7;
  request.max_spans_per_frame = 128;
  request.prefix = "replan.";
  WireWriter request_writer;
  encode_telemetry_subscribe_request(request_writer, request);
  std::vector<std::uint8_t> bytes = request_writer.take();
  TelemetrySubscribeRequest request_out;
  {
    WireReader r(bytes);
    ASSERT_TRUE(decode_telemetry_subscribe_request(r, request_out));
    EXPECT_EQ(r.remaining(), 0u);
  }
  EXPECT_EQ(request_out.interval_ms, 25u);
  EXPECT_EQ(request_out.max_frames, 7u);
  EXPECT_EQ(request_out.max_spans_per_frame, 128u);
  EXPECT_EQ(request_out.prefix, "replan.");

  TelemetryFrame frame;
  frame.frame_seq = 3;
  frame.last = true;
  frame.dropped_spans = 11;
  frame.metrics.push_back({"cosched_cache_hits_total", 42.0});
  TelemetrySpanSample span;
  span.name = "replan.commit";
  span.phase = static_cast<std::uint8_t>(Tracer::Phase::Begin);
  span.trace_id = 0x77;
  span.seq = 900;
  span.tid = 2;
  span.depth = 1;
  span.wall_us = 12.5;
  span.virtual_time = 3.0;
  span.args = "jobs=4";
  frame.spans.push_back(span);

  WireWriter frame_writer;
  encode_telemetry_frame(frame_writer, frame);
  bytes = frame_writer.take();
  TelemetryFrame frame_out;
  {
    WireReader r(bytes);
    ASSERT_TRUE(decode_telemetry_frame(r, frame_out));
    EXPECT_EQ(r.remaining(), 0u);
  }
  EXPECT_EQ(frame_out.frame_seq, 3u);
  EXPECT_TRUE(frame_out.last);
  EXPECT_EQ(frame_out.dropped_spans, 11u);
  ASSERT_EQ(frame_out.metrics.size(), 1u);
  EXPECT_EQ(frame_out.metrics[0].name, "cosched_cache_hits_total");
  ASSERT_EQ(frame_out.spans.size(), 1u);
  EXPECT_EQ(frame_out.spans[0].name, "replan.commit");
  EXPECT_EQ(frame_out.spans[0].trace_id, 0x77u);
  EXPECT_EQ(frame_out.spans[0].args, "jobs=4");

  // A phase byte outside the Tracer::Phase range is malformed, not UB.
  frame.spans[0].phase = 200;
  WireWriter bad_writer;
  encode_telemetry_frame(bad_writer, frame);
  bytes = bad_writer.take();
  {
    WireReader r(bytes);
    EXPECT_FALSE(decode_telemetry_frame(r, frame_out));
  }
}

// v4 appends the frame-level sampling-mode label; a v3 frame simply lacks
// the trailing bytes and decodes to an empty label — either end may be the
// older one.
TEST(TelemetryWire, FrameSamplingModeTravelsOnlyOnV4) {
  TelemetryFrame frame;
  frame.frame_seq = 9;
  frame.sampling_mode = "head:1-in-64,tail(slow-replans)";

  // Default (v4) encode carries the label.
  WireWriter v4_writer;
  encode_telemetry_frame(v4_writer, frame);
  std::vector<std::uint8_t> bytes = v4_writer.take();
  TelemetryFrame out;
  out.sampling_mode = "stale";  // decoder must reset the field
  {
    WireReader r(bytes);
    ASSERT_TRUE(decode_telemetry_frame(r, out));
    EXPECT_EQ(r.remaining(), 0u);
  }
  EXPECT_EQ(out.sampling_mode, "head:1-in-64,tail(slow-replans)");

  // A v3 encode omits the field entirely; the decoder yields "".
  WireWriter v3_writer;
  encode_telemetry_frame(v3_writer, frame, 3);
  std::vector<std::uint8_t> v3_bytes = v3_writer.take();
  EXPECT_LT(v3_bytes.size(), bytes.size());
  out.sampling_mode = "stale";
  {
    WireReader r(v3_bytes);
    ASSERT_TRUE(decode_telemetry_frame(r, out));
    EXPECT_EQ(r.remaining(), 0u);
  }
  EXPECT_EQ(out.sampling_mode, "");
}

// ----------------------------------------------- end-to-end correlation

ServerOptions telemetry_server_options() {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.enable_http = false;
  options.service.wall_clock = false;
  options.service.scheduler.cores = 2;
  options.service.scheduler.machines = 3;
  options.service.scheduler.admission.every_k = 2;
  options.service.scheduler.log_process_finish = false;
  return options;
}

WorkloadTrace telemetry_jobs(std::uint64_t seed, std::int32_t jobs = 8) {
  TraceSpec spec;
  spec.job_count = jobs;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = seed;
  return generate_trace(spec);
}

// THE acceptance criterion: one client-supplied trace id is visible on the
// replan phase spans, the solver's search spans, the Chrome export's flow
// events and the telemetry stream's span samples.
TEST(TelemetryEndToEnd, ClientTraceIdReachesReplanSolverAndStream) {
  reset_global_tracer();
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);

  CoschedServer server(telemetry_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  constexpr std::uint64_t kTraceId = 777001;

  // A second connection subscribes before the traffic, so the stream's
  // cursor starts ahead of the correlated spans.
  ClientOptions stream_options;
  stream_options.port = server.port();
  CoschedClient streamer(stream_options);
  TelemetrySubscribeRequest subscribe;
  subscribe.interval_ms = 25;
  subscribe.max_spans_per_frame = 512;
  TelemetrySubscribeAck ack;
  RpcError stream_error = streamer.subscribe_telemetry(subscribe, ack);
  ASSERT_TRUE(stream_error.ok()) << stream_error.describe();
  EXPECT_EQ(ack.interval_ms, 25u);
  EXPECT_EQ(ack.max_spans_per_frame, 512u);

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  client.set_trace_id(kTraceId);
  for (const TraceJob& job : telemetry_jobs(41).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }
  EXPECT_EQ(client.last_trace_id(), kTraceId);  // v3 server echoes the id

  // Server-side spans: replan phases and solver searches carry the id.
  TraceDumpResponse dump;
  ASSERT_TRUE(client.trace_dump(dump).ok());
  const std::string tag = " trace=777001";
  for (const char* name :
       {"span online.replan", "span replan.admission", "span replan.commit",
        "span astar.search"}) {
    std::size_t at = dump.text.find(name);
    ASSERT_NE(at, std::string::npos) << name << "\n" << dump.text;
    std::size_t eol = dump.text.find('\n', at);
    EXPECT_NE(dump.text.substr(at, eol - at).find(tag), std::string::npos)
        << name << " line lacks the client trace id:\n"
        << dump.text.substr(at, eol - at);
  }
  // Chrome export: spans stamped with the id plus flow events linking the
  // RPC request to the solver work for Perfetto's arrows.
  EXPECT_NE(dump.chrome_json.find("\"trace_id\":777001"), std::string::npos);
  EXPECT_NE(dump.chrome_json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(dump.chrome_json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(dump.chrome_json.find("\"bp\":\"e\""), std::string::npos);

  // The stream: frames carry metrics snapshots and span samples stamped
  // with the client's trace id.
  bool saw_trace_span = false;
  bool saw_metric = false;
  bool saw_mode = false;
  for (int i = 0; i < 80 && !(saw_trace_span && saw_metric); ++i) {
    TelemetryFrame frame;
    RpcError frame_error = streamer.read_telemetry_frame(frame, 2.0);
    ASSERT_TRUE(frame_error.ok()) << frame_error.describe();
    for (const TelemetryMetricSample& m : frame.metrics)
      if (m.name.rfind("cosched_", 0) == 0) saw_metric = true;
    for (const TelemetrySpanSample& s : frame.spans)
      if (s.trace_id == kTraceId) saw_trace_span = true;
    // v4 frames advertise the active sampling regime alongside the data.
    if (frame.sampling_mode.rfind("head:", 0) == 0) saw_mode = true;
    ASSERT_FALSE(frame.last);
  }
  EXPECT_TRUE(saw_metric);
  EXPECT_TRUE(saw_trace_span);
  EXPECT_TRUE(saw_mode);

  // Polite unsubscribe: the server answers with one final frame marked
  // `last`, then the stream is down.
  ASSERT_TRUE(streamer.stop_telemetry().ok());
  bool got_last = false;
  for (int i = 0; i < 80 && !got_last; ++i) {
    TelemetryFrame frame;
    RpcError frame_error = streamer.read_telemetry_frame(frame, 2.0);
    ASSERT_TRUE(frame_error.ok()) << frame_error.describe();
    got_last = frame.last;
  }
  EXPECT_TRUE(got_last);
  EXPECT_FALSE(streamer.streaming());

  ServerStats stats = server.stats();
  EXPECT_GT(stats.telemetry_frames, 0u);

  server.stop();
  reset_global_tracer();
}

TEST(TelemetryStream, PrefixFilterAndMaxFramesEndTheStream) {
  reset_global_tracer();
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);

  CoschedServer server(telemetry_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ClientOptions stream_options;
  stream_options.port = server.port();
  CoschedClient streamer(stream_options);
  TelemetrySubscribeRequest subscribe;
  subscribe.interval_ms = 25;
  subscribe.max_frames = 6;
  subscribe.prefix = "rpc.";
  TelemetrySubscribeAck ack;
  ASSERT_TRUE(streamer.subscribe_telemetry(subscribe, ack).ok());

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : telemetry_jobs(42, 4).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  std::size_t frames = 0;
  bool saw_rpc_span = false;
  while (true) {
    TelemetryFrame frame;
    RpcError frame_error = streamer.read_telemetry_frame(frame, 2.0);
    ASSERT_TRUE(frame_error.ok()) << frame_error.describe();
    ++frames;
    for (const TelemetrySpanSample& s : frame.spans) {
      EXPECT_EQ(s.name.rfind("rpc.", 0), 0u) << s.name;
      saw_rpc_span = true;
    }
    if (frame.last) break;
    ASSERT_LE(frames, 6u);
  }
  EXPECT_EQ(frames, 6u);  // max_frames honoured, final frame marked last
  EXPECT_TRUE(saw_rpc_span);
  EXPECT_FALSE(streamer.streaming());

  server.stop();
  reset_global_tracer();
}

TEST(TelemetryStream, SubscribeRequiresV3AndOldPeersAreRefusedCleanly) {
  CoschedServer server(telemetry_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  RequestEnvelope request;
  request.version = 2;
  request.type = MessageType::SubscribeTelemetry;
  request.request_id = 91;
  TelemetrySubscribeRequest body;
  WireWriter body_writer;
  encode_telemetry_subscribe_request(body_writer, body);
  request.body = body_writer.take();
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);
  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.status, RpcStatus::BadRequest);

  server.stop();
}

}  // namespace
}  // namespace cosched
