// Tests for the RPC front-end (src/rpc): protocol round-trips, the
// loopback end-to-end determinism criterion (a TCP-submitted job mix must
// match the trace-replay path byte for byte), and fault injection —
// truncated frames, mid-request disconnects, server-side deadline expiry,
// retry budgets, connection caps.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/alerts.hpp"
#include "online/scheduler.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"

namespace cosched {
namespace {

// ------------------------------------------------------------ protocol

TEST(Protocol, RequestEnvelopeRoundTrips) {
  RequestEnvelope request;
  request.type = MessageType::SubmitJob;
  request.request_id = 0xFEEDFACEDEADBEEFull;
  request.body = {1, 2, 3};
  RequestEnvelope got;
  ASSERT_TRUE(decode_request(encode_request(request), got));
  EXPECT_EQ(got.version, kProtocolVersion);
  EXPECT_EQ(got.type, request.type);
  EXPECT_EQ(got.request_id, request.request_id);
  EXPECT_EQ(got.body, request.body);
}

TEST(Protocol, ResponseEnvelopeRoundTrips) {
  ResponseEnvelope response;
  response.type = MessageType::Drain;
  response.request_id = 42;
  response.status = RpcStatus::Draining;
  response.error = "service is draining";
  response.body = {9, 8};
  ResponseEnvelope got;
  ASSERT_TRUE(decode_response(encode_response(response), got));
  EXPECT_EQ(got.type, response.type);
  EXPECT_EQ(got.request_id, response.request_id);
  EXPECT_EQ(got.status, response.status);
  EXPECT_EQ(got.error, response.error);
  EXPECT_EQ(got.body, response.body);
}

TEST(Protocol, MalformedEnvelopesAreRejected) {
  RequestEnvelope request;
  std::vector<std::uint8_t> bytes = encode_request(request);
  bytes.resize(5);  // header cut short
  EXPECT_FALSE(decode_request(bytes, request));

  RequestEnvelope bad_type;
  bad_type.type = static_cast<MessageType>(200);
  EXPECT_FALSE(decode_request(encode_request(bad_type), request));

  ResponseEnvelope response;
  EXPECT_FALSE(decode_response({}, response));
}

TEST(Protocol, TraceJobRoundTripsBitForBit) {
  TraceJob job;
  job.arrival_time = 17.0 / 3.0;
  job.name = "mpi/lu.C.4";
  job.kind = JobKind::ParallelNoComm;
  job.processes = 4;
  job.work = 12.75;
  job.miss_rate = 0.62;
  job.sensitivity = 1.0 / 7.0;
  WireWriter w;
  encode_trace_job(w, job);
  WireReader r(w.bytes());
  TraceJob got;
  ASSERT_TRUE(decode_trace_job(r, got));
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(got.arrival_time, job.arrival_time);
  EXPECT_EQ(got.name, job.name);
  EXPECT_EQ(got.kind, job.kind);
  EXPECT_EQ(got.processes, job.processes);
  EXPECT_EQ(got.work, job.work);
  EXPECT_EQ(got.miss_rate, job.miss_rate);
  EXPECT_EQ(got.sensitivity, job.sensitivity);
}

TEST(Protocol, SnapshotRoundTrips) {
  ServiceSnapshot snapshot;
  snapshot.now = 3.25;
  snapshot.pending_jobs = 2;
  snapshot.free_slots = 5;
  snapshot.completions = 11;
  snapshot.live_degradation_sum = 1.5;
  snapshot.mean_live_degradation = 0.5;
  snapshot.machines.resize(3);
  snapshot.machines[0].push_back({7, 3, 0.25});
  snapshot.machines[2].push_back({8, 3, 0.75});
  snapshot.machines[2].push_back({9, 4, 0.5});
  WireWriter w;
  encode_service_snapshot(w, snapshot);
  WireReader r(w.bytes());
  ServiceSnapshot got;
  ASSERT_TRUE(decode_service_snapshot(r, got));
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(got.now, snapshot.now);
  ASSERT_EQ(got.machines.size(), 3u);
  EXPECT_TRUE(got.machines[1].empty());
  ASSERT_EQ(got.machines[2].size(), 2u);
  EXPECT_EQ(got.machines[2][1].gid, 9);
  EXPECT_EQ(got.machines[2][1].job, 4);
  EXPECT_EQ(got.machines[2][1].degradation, 0.5);
}

TEST(Protocol, JobStatusViewRejectsLyingProcCount) {
  WireWriter w;
  JobStatusView view;
  view.id = 1;
  encode_job_status_view(w, view);
  std::vector<std::uint8_t> bytes = w.take();
  // Overwrite the proc-count field (last 4 bytes) with a huge claim.
  bytes[bytes.size() - 1] = 0xFF;
  bytes[bytes.size() - 2] = 0xFF;
  WireReader r(bytes);
  JobStatusView got;
  EXPECT_FALSE(decode_job_status_view(r, got));
}

// ------------------------------------------------------------ loopback

OnlineSchedulerOptions small_fleet() {
  OnlineSchedulerOptions options;
  options.cores = 2;
  options.machines = 3;
  options.admission.every_k = 2;
  options.log_process_finish = true;
  return options;
}

WorkloadTrace small_trace(std::uint64_t seed, std::int32_t jobs = 16) {
  TraceSpec spec;
  spec.job_count = jobs;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = seed;
  return generate_trace(spec);
}

ServerOptions loopback_options() {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral
  options.service.wall_clock = false;
  options.service.scheduler = small_fleet();
  return options;
}

ClientOptions client_for(const CoschedServer& server) {
  ClientOptions options;
  options.port = server.port();
  options.backoff_base_seconds = 0.005;
  options.backoff_max_seconds = 0.02;
  return options;
}

// THE acceptance criterion of the RPC front-end: a job mix submitted over
// TCP in virtual-time mode produces byte-for-byte the metrics CSVs of the
// same mix replayed as a trace.
TEST(RpcLoopback, TcpSubmissionMatchesTraceReplayByteForByte) {
  WorkloadTrace trace = small_trace(21);

  OnlineScheduler reference(small_fleet());
  reference.run(trace);
  std::string expected = reference.metrics().render_deterministic_csv();

  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse reply;
    RpcError rpc_error = client.submit_job(job, reply);
    ASSERT_TRUE(rpc_error.ok()) << rpc_error.describe();
    EXPECT_GE(reply.job_id, 0);
  }
  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions, static_cast<std::uint64_t>(trace.job_count()));

  MetricsResponse metrics;
  ASSERT_TRUE(client.get_metrics(metrics).ok());
  EXPECT_EQ(metrics.deterministic_csv, expected);
  EXPECT_EQ(metrics.arrivals, reference.metrics().arrivals());
  EXPECT_EQ(metrics.replans, reference.metrics().replans());
  server.stop();
}

TEST(RpcLoopback, StatusSnapshotAndErrorsBehave) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  TraceJob job;
  job.name = "probe";
  job.work = 8.0;
  SubmitJobResponse submitted;
  ASSERT_TRUE(client.submit_job(job, submitted).ok());
  // Idle fleet + pending work admits immediately: placement and predicted
  // degradation come back in the submit response.
  EXPECT_EQ(submitted.status.phase, JobPhase::Running);
  ASSERT_EQ(submitted.status.procs.size(), 1u);
  EXPECT_GE(submitted.status.procs[0].machine, 0);

  JobStatusResponse status;
  ASSERT_TRUE(client.query_job_status(submitted.job_id, status).ok());
  EXPECT_EQ(status.status.name, "probe");

  RpcError unknown = client.query_job_status(999, status);
  EXPECT_EQ(unknown.kind, RpcErrorKind::Application);
  EXPECT_EQ(unknown.app, RpcStatus::UnknownJob);

  ServiceSnapshot snapshot;
  ASSERT_TRUE(client.query_snapshot(snapshot).ok());
  ASSERT_EQ(snapshot.machines.size(), 3u);
  EXPECT_EQ(snapshot.free_slots, 5);  // 6 cores, one running process

  TraceJob bad;
  bad.processes = 99;  // larger than the whole fleet
  SubmitJobResponse rejected;
  RpcError invalid = client.submit_job(bad, rejected);
  EXPECT_EQ(invalid.kind, RpcErrorKind::Application);
  EXPECT_EQ(invalid.app, RpcStatus::InvalidJob);

  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions, 1u);

  // Drain mode: admissions stopped, queued work already finished.
  SubmitJobResponse refused;
  RpcError draining = client.submit_job(job, refused);
  EXPECT_EQ(draining.kind, RpcErrorKind::Application);
  EXPECT_EQ(draining.app, RpcStatus::Draining);
  server.stop();
}

TEST(RpcLoopback, ShutdownRequestStopsTheServer) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));
  ShutdownResponse reply;
  ASSERT_TRUE(client.shutdown_server(reply).ok());
  server.wait();  // returns because the RPC tripped the latch
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

// The admission max-wait backstop must fire off RPC submissions exactly as
// it does in trace replay: a job nothing else admits is force-admitted
// max_wait after its arrival.
TEST(RpcLoopback, MaxWaitBackstopFiresOverRpc) {
  ServerOptions options = loopback_options();
  options.service.scheduler.admission.every_k = 100;  // batch never fills
  options.service.scheduler.admission.max_wait = 5.0;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  TraceJob hog;  // admitted instantly (idle fleet), keeps the fleet busy
  hog.name = "hog";
  hog.arrival_time = 0.0;
  hog.work = 100.0;
  SubmitJobResponse hog_reply;
  ASSERT_TRUE(client.submit_job(hog, hog_reply).ok());
  ASSERT_EQ(hog_reply.status.phase, JobPhase::Running);

  TraceJob waiter;  // fleet busy, batch of 1 < every_k: only the backstop
  waiter.name = "waiter";
  waiter.arrival_time = 1.0;
  waiter.work = 2.0;
  SubmitJobResponse waiter_reply;
  ASSERT_TRUE(client.submit_job(waiter, waiter_reply).ok());
  EXPECT_EQ(waiter_reply.status.phase, JobPhase::Pending);

  // A later submission pumps virtual time past the waiter's deadline.
  TraceJob probe;
  probe.name = "probe";
  probe.arrival_time = 10.0;
  probe.work = 1.0;
  SubmitJobResponse probe_reply;
  ASSERT_TRUE(client.submit_job(probe, probe_reply).ok());

  JobStatusResponse status;
  ASSERT_TRUE(client.query_job_status(waiter_reply.job_id, status).ok());
  // By t=10 the force-admitted waiter has already run to completion; the
  // backstop's signature is the admit time, not the phase.
  EXPECT_NE(status.status.phase, JobPhase::Pending);
  EXPECT_EQ(status.status.admit_time,
            waiter.arrival_time + options.service.scheduler.admission.max_wait);

  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions, 3u);
  server.stop();
}

// ------------------------------------------------------------ faults

TEST(RpcFaults, TruncatedFrameDropsConnectionNotServer) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus status = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), status);
  ASSERT_EQ(status, NetStatus::Ok);
  const std::uint8_t partial[] = {0x43, 0x53};  // half a magic word
  ASSERT_EQ(raw.send_all(partial, sizeof partial, Deadline::after(2.0)),
            NetStatus::Ok);
  raw.close();  // mid-frame disconnect

  // The server must shrug that off and keep serving.
  CoschedClient client(client_for(server));
  MetricsResponse metrics;
  ASSERT_TRUE(client.get_metrics(metrics).ok());
  // Stats are updated when the worker notices the dead connection; the
  // successful request above serializes behind it on busy servers, but
  // poll at most a moment for the counter.
  for (int i = 0; i < 100 && server.stats().malformed_frames == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(server.stats().malformed_frames, 1u);
  server.stop();
}

TEST(RpcFaults, GarbageMagicDropsConnectionNotServer) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus status = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), status);
  ASSERT_EQ(status, NetStatus::Ok);
  WireWriter w;
  w.u32(0x47455420);  // "GET "
  w.u32(2);
  // Header only: the magic check rejects before the body is read, and with
  // an empty receive buffer the server's close is a clean FIN (sending the
  // body too would leave unread bytes and turn the close into an RST).
  ASSERT_EQ(raw.send_all(w.bytes().data(), w.bytes().size(),
                         Deadline::after(2.0)),
            NetStatus::Ok);
  std::vector<std::uint8_t> reply;
  // No response: the connection is dropped.
  EXPECT_EQ(read_frame(raw, reply, Deadline::after(2.0)), FrameStatus::Closed);

  CoschedClient client(client_for(server));
  MetricsResponse metrics;
  EXPECT_TRUE(client.get_metrics(metrics).ok());
  server.stop();
}

TEST(RpcFaults, MidRequestDisconnectLeavesServerServing) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // A correctly-framed SubmitJob whose connection dies before the reply can
  // be read: the command still executes (at-most-once is the client's
  // problem, which is why SubmitJob is never blindly retried).
  {
    NetStatus status = NetStatus::Ok;
    Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                    Deadline::after(2.0), status);
    ASSERT_EQ(status, NetStatus::Ok);
    RequestEnvelope request;
    request.type = MessageType::SubmitJob;
    request.request_id = 1;
    WireWriter body;
    TraceJob job;
    job.name = "orphan";
    job.work = 1.0;
    encode_trace_job(body, job);
    request.body = body.take();
    ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
              FrameStatus::Ok);
    raw.close();  // gone before the response
  }

  // The orphan's submission races this connection's requests (different
  // connection, different worker); wait until it has been counted before
  // draining.
  CoschedClient client(client_for(server));
  MetricsResponse metrics;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.get_metrics(metrics).ok());
    if (metrics.arrivals >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(metrics.arrivals, 1u);
  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());
  EXPECT_EQ(drained.completions, 1u);  // the orphan ran to completion
  server.stop();
}

TEST(RpcFaults, ServerSideDeadlineExpiryIsReported) {
  ServerOptions options = loopback_options();
  options.request_deadline_seconds = 0.0;  // every budget is pre-expired
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));
  MetricsResponse metrics;
  RpcError rpc_error = client.get_metrics(metrics);
  EXPECT_EQ(rpc_error.kind, RpcErrorKind::Application);
  EXPECT_EQ(rpc_error.app, RpcStatus::DeadlineExpired);
  EXPECT_EQ(rpc_error.attempts, 1);  // application errors are never retried
  server.stop();
}

TEST(RpcFaults, RetryBackoffExhaustsBudgetAgainstDeadPort) {
  NetStatus status = NetStatus::Ok;
  Socket listener = Socket::listen_on("127.0.0.1", 0, 1, status);
  ASSERT_EQ(status, NetStatus::Ok);
  std::uint16_t dead_port = listener.local_port();
  listener.close();

  ClientOptions options;
  options.port = dead_port;
  options.max_attempts = 4;
  options.connect_timeout_seconds = 0.5;
  options.backoff_base_seconds = 0.005;
  options.backoff_max_seconds = 0.02;
  CoschedClient client(options);
  MetricsResponse metrics;
  RpcError error = client.get_metrics(metrics);
  EXPECT_EQ(error.kind, RpcErrorKind::Transport);
  EXPECT_EQ(error.net, NetStatus::Refused);
  EXPECT_EQ(error.attempts, 4);  // full budget consumed
}

TEST(RpcFaults, VersionMismatchIsAnsweredNotDropped) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus status = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), status);
  ASSERT_EQ(status, NetStatus::Ok);
  RequestEnvelope request;
  request.version = 99;
  request.type = MessageType::GetMetrics;
  request.request_id = 7;
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(2.0)), FrameStatus::Ok);
  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.status, RpcStatus::VersionMismatch);
  EXPECT_EQ(response.request_id, 7u);
  server.stop();
}

TEST(RpcFaults, ConnectionCapRefusesTheOverflow) {
  ServerOptions options = loopback_options();
  options.max_connections = 1;
  options.worker_threads = 2;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // First client occupies the only slot.
  CoschedClient first(client_for(server));
  MetricsResponse metrics;
  ASSERT_TRUE(first.get_metrics(metrics).ok());

  // Second client is accepted at TCP level, then refused by the cap.
  ClientOptions second_options = client_for(server);
  second_options.max_attempts = 1;
  CoschedClient second(second_options);
  RpcError refused = second.get_metrics(metrics);
  EXPECT_EQ(refused.kind, RpcErrorKind::Transport);

  for (int i = 0; i < 100 && server.stats().rejected_connections == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(server.stats().rejected_connections, 1u);

  // Releasing the slot lets the next client in — once the worker notices
  // the EOF (bounded by its idle-poll slice), so give the retry budget
  // room to cover that window.
  first.disconnect();
  ClientOptions third_options = client_for(server);
  third_options.max_attempts = 20;
  third_options.backoff_base_seconds = 0.02;
  third_options.backoff_max_seconds = 0.1;
  CoschedClient third(third_options);
  RpcError ok = third.get_metrics(metrics);
  EXPECT_TRUE(ok.ok()) << ok.describe();
  server.stop();
}

// ------------------------------------------- v5 shard-aware wire compat

/// One raw request/response exchange at an explicit protocol version —
/// exactly the bytes a version-N peer would produce.
ResponseEnvelope raw_exchange(std::uint16_t port, std::uint16_t version,
                              MessageType type, std::uint64_t request_id,
                              std::vector<std::uint8_t> body) {
  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", port, Deadline::after(2.0),
                                  net);
  EXPECT_EQ(net, NetStatus::Ok);
  RequestEnvelope request;
  request.version = version;
  request.type = type;
  request.request_id = request_id;
  request.body = std::move(body);
  EXPECT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);
  ResponseEnvelope response;
  EXPECT_TRUE(decode_response(payload, response));
  return response;
}

// Every pre-v5 peer must get a SubmitJob ack that ends exactly where it
// always did — the shard id travels on v5 wires only, even when the server
// is deployed as a shard (shard_id set).
TEST(ShardCompat, V1ToV4PeersGetShardFreeSubmitAcks) {
  ServerOptions options = loopback_options();
  options.shard_id = 3;  // a sharded deployment's backend server
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  for (std::uint16_t version = 1; version <= 4; ++version) {
    TraceJob job;
    job.name = "compat-v" + std::to_string(version);
    job.work = 4.0;
    job.arrival_time = static_cast<Real>(version);
    WireWriter body;
    encode_trace_job(body, job);
    ResponseEnvelope response =
        raw_exchange(server.port(), version, MessageType::SubmitJob, version,
                     body.take());
    EXPECT_EQ(response.version, version);
    ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;

    WireReader r(response.body);
    SubmitJobResponse ack;
    ack.shard_id = 99;  // decoder must reset to the -1 default
    ASSERT_TRUE(decode_submit_response(r, ack));
    EXPECT_EQ(r.remaining(), 0u) << "v" << version
                                 << " ack carries trailing bytes";
    EXPECT_EQ(ack.shard_id, -1);
    EXPECT_GE(ack.job_id, 0);
  }
  server.stop();
}

// Same pin for GetMetrics: a v4 peer's body ends after the v4 block; the
// v5 shard/fan-in fields never leak backwards.
TEST(ShardCompat, V4PeerGetsNoShardBlock) {
  ServerOptions options = loopback_options();
  options.shard_id = 2;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ResponseEnvelope response = raw_exchange(
      server.port(), 4, MessageType::GetMetrics, 91, {});
  EXPECT_EQ(response.version, 4);
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;

  WireReader r(response.body);
  MetricsResponse metrics;
  metrics.shard_id = 77;  // decoder must reset every v5 default
  metrics.command_queue_depth = 123;
  metrics.replan_p95_seconds = 1.5;
  metrics.router_spillovers = 9;
  metrics.router_remapped_keys = 9;
  metrics.shards.push_back({});
  ASSERT_TRUE(decode_metrics_response(r, metrics));
  EXPECT_EQ(r.remaining(), 0u);  // v4 body ends after the v4 block
  EXPECT_EQ(metrics.shard_id, -1);
  EXPECT_EQ(metrics.command_queue_depth, 0u);
  EXPECT_EQ(metrics.replan_p95_seconds, 0.0);
  EXPECT_EQ(metrics.router_spillovers, 0u);
  EXPECT_EQ(metrics.router_remapped_keys, 0u);
  EXPECT_TRUE(metrics.shards.empty());
  server.stop();
}

// A v5 peer against a shard-deployed server sees the shard identity in
// both the SubmitJob ack and the GetMetrics shard block (fan-in list empty:
// a single server fronts no shards).
TEST(ShardCompat, V5PeerSeesShardIdentity) {
  ServerOptions options = loopback_options();
  options.shard_id = 5;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  TraceJob job;
  job.name = "shard-aware";
  job.work = 4.0;
  SubmitJobResponse ack;
  ASSERT_TRUE(client.submit_job(job, ack).ok());
  EXPECT_EQ(ack.shard_id, 5);

  MetricsResponse metrics;
  ASSERT_TRUE(client.get_metrics(metrics).ok());
  EXPECT_EQ(metrics.shard_id, 5);
  EXPECT_TRUE(metrics.shards.empty());
  EXPECT_EQ(metrics.router_spillovers, 0u);
  server.stop();
}

// Round-trip of the v5 fan-in block itself, shard entries included — the
// encoder/decoder pair a router and a v5 client exercise.
TEST(ShardCompat, MetricsFanInBlockRoundTrips) {
  MetricsResponse response;
  response.virtual_now = 12.5;
  response.arrivals = 30;
  response.completions = 28;
  response.shard_id = -1;
  response.command_queue_depth = 7;
  response.replan_p95_seconds = 0.25;
  response.router_spillovers = 3;
  response.router_remapped_keys = 2;
  ShardMetricsEntry a;
  a.shard_id = 0;
  a.requests = 18;
  a.arrivals = 18;
  a.completions = 17;
  a.replans = 9;
  a.virtual_now = 12.5;
  a.queue_depth = 4;
  a.replan_p95_seconds = 0.25;
  ShardMetricsEntry b;
  b.shard_id = 1;
  b.requests = 12;
  b.arrivals = 12;
  b.completions = 11;
  b.virtual_now = 11.0;
  response.shards = {a, b};

  WireWriter w;
  encode_metrics_response(w, response, 5);
  WireReader r(w.bytes());
  MetricsResponse got;
  ASSERT_TRUE(decode_metrics_response(r, got));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(got.command_queue_depth, 7u);
  EXPECT_EQ(got.replan_p95_seconds, 0.25);
  EXPECT_EQ(got.router_spillovers, 3u);
  EXPECT_EQ(got.router_remapped_keys, 2u);
  ASSERT_EQ(got.shards.size(), 2u);
  EXPECT_EQ(got.shards[0].requests, 18u);
  EXPECT_EQ(got.shards[0].queue_depth, 4u);
  EXPECT_EQ(got.shards[1].shard_id, 1);
  EXPECT_EQ(got.shards[1].virtual_now, 11.0);

  // A truncated shard list (count promising more entries than bytes) is
  // rejected, not misread.
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 8);
  WireReader truncated(bytes);
  MetricsResponse bad;
  EXPECT_FALSE(decode_metrics_response(truncated, bad));
}

// ------------------------------------------- v6 health fan-in wire compat

// A v5 peer's GetMetrics body must end exactly where it always did: the v6
// shard-health block never leaks backwards, and the decoder resets the v6
// defaults when fed an older body.
TEST(ShardCompat, V5PeerGetsNoHealthBlock) {
  MetricsResponse response;
  response.virtual_now = 5.0;
  ShardHealthEntry health;
  health.shard_id = 0;
  health.up = false;
  health.transport_errors = 4;
  response.shard_health.push_back(health);

  WireWriter w;
  encode_metrics_response(w, response, 5);
  WireReader r(w.bytes());
  MetricsResponse got;
  got.shard_health.push_back({});  // decoder must reset the v6 default
  ASSERT_TRUE(decode_metrics_response(r, got));
  EXPECT_EQ(r.remaining(), 0u) << "v5 body carries trailing bytes";
  EXPECT_TRUE(got.shard_health.empty());
}

// Round-trip of the v6 health block itself — per-shard liveness and the
// per-kind RPC failure counters a router answers to a v6 peer.
TEST(ShardCompat, HealthBlockRoundTripsAtV6) {
  MetricsResponse response;
  response.virtual_now = 8.0;
  response.arrivals = 4;
  ShardHealthEntry a;
  a.shard_id = 0;
  a.up = true;
  ShardHealthEntry b;
  b.shard_id = 1;
  b.up = false;
  b.transport_errors = 7;
  b.protocol_errors = 1;
  b.application_errors = 2;
  response.shard_health = {a, b};

  WireWriter w;
  encode_metrics_response(w, response, 6);
  WireReader r(w.bytes());
  MetricsResponse got;
  ASSERT_TRUE(decode_metrics_response(r, got));
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(got.shard_health.size(), 2u);
  EXPECT_EQ(got.shard_health[0].shard_id, 0);
  EXPECT_TRUE(got.shard_health[0].up);
  EXPECT_EQ(got.shard_health[0].transport_errors, 0u);
  EXPECT_EQ(got.shard_health[1].shard_id, 1);
  EXPECT_FALSE(got.shard_health[1].up);
  EXPECT_EQ(got.shard_health[1].transport_errors, 7u);
  EXPECT_EQ(got.shard_health[1].protocol_errors, 1u);
  EXPECT_EQ(got.shard_health[1].application_errors, 2u);

  // A truncated health list is rejected, not misread.
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 4);
  WireReader truncated(bytes);
  MetricsResponse bad;
  EXPECT_FALSE(decode_metrics_response(truncated, bad));
}

// --------------------------------------- v7 decision-journal wire compat

TEST(TimelineWire, JournalEventAndResponseRoundTrip) {
  JournalEvent event;
  event.job_id = 17;
  event.kind = JournalEventKind::Placement;
  event.time = 4.25;
  event.trace_id = 0xBEEF;
  event.seq = 9;
  event.policy = "solver";
  event.machine = 3;
  event.candidates = 6;
  event.degradation_delta = -0.5;
  event.co_runners = {2, 11};
  event.detail = "batch=4";

  WireWriter w;
  encode_journal_event(w, event);
  WireReader r(w.bytes());
  JournalEvent got;
  got.co_runners = {99};  // decoder must reset, not append
  ASSERT_TRUE(decode_journal_event(r, got));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(got.job_id, 17);
  EXPECT_EQ(got.kind, JournalEventKind::Placement);
  EXPECT_EQ(got.time, 4.25);
  EXPECT_EQ(got.trace_id, 0xBEEFu);
  EXPECT_EQ(got.seq, 9u);
  EXPECT_EQ(got.policy, "solver");
  EXPECT_EQ(got.machine, 3);
  EXPECT_EQ(got.candidates, 6);
  EXPECT_EQ(got.degradation_delta, -0.5);
  EXPECT_EQ(got.co_runners, (std::vector<std::int64_t>{2, 11}));
  EXPECT_EQ(got.detail, "batch=4");

  JobTimelineResponse reply;
  reply.job_id = 17;
  reply.found = true;
  reply.truncated = true;
  reply.virtual_now = 30.0;
  reply.events = {event, event};
  WireWriter rw;
  encode_timeline_response(rw, reply);
  WireReader rr(rw.bytes());
  JobTimelineResponse round;
  ASSERT_TRUE(decode_timeline_response(rr, round));
  EXPECT_EQ(rr.remaining(), 0u);
  EXPECT_EQ(round.job_id, 17);
  EXPECT_TRUE(round.truncated);
  EXPECT_EQ(round.virtual_now, 30.0);
  ASSERT_EQ(round.events.size(), 2u);
  EXPECT_EQ(round.events[1].policy, "solver");

  // A truncated body (event count promising more than the bytes hold) is
  // rejected, not misread.
  std::vector<std::uint8_t> bytes = rw.bytes();
  bytes.resize(bytes.size() - 6);
  WireReader truncated(bytes);
  JobTimelineResponse bad;
  EXPECT_FALSE(decode_timeline_response(truncated, bad));

  // An undecodable event kind is rejected too.
  JournalEventKind kind;
  EXPECT_FALSE(journal_event_kind_from(200, kind));
}

// A v6 peer against a v7 server keeps getting byte-identical replies: the
// GetMetrics body still ends after the v6 health block and the TraceDump
// body still decodes cleanly with nothing trailing. New messages must ride
// new requests, never leak into old reply shapes.
TEST(TimelineCompat, V6RepliesArePinnedUnderV7Server) {
  ServerOptions options = loopback_options();
  options.shard_id = 1;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ResponseEnvelope metrics_reply =
      raw_exchange(server.port(), 6, MessageType::GetMetrics, 61, {});
  EXPECT_EQ(metrics_reply.version, 6);
  ASSERT_EQ(metrics_reply.status, RpcStatus::Ok) << metrics_reply.error;
  WireReader mr(metrics_reply.body);
  MetricsResponse metrics;
  ASSERT_TRUE(decode_metrics_response(mr, metrics));
  EXPECT_EQ(mr.remaining(), 0u) << "v6 GetMetrics body carries trailing bytes";
  EXPECT_EQ(metrics.shard_id, 1);

  ResponseEnvelope trace_reply =
      raw_exchange(server.port(), 6, MessageType::TraceDump, 62, {});
  EXPECT_EQ(trace_reply.version, 6);
  ASSERT_EQ(trace_reply.status, RpcStatus::Ok) << trace_reply.error;
  WireReader tr(trace_reply.body);
  TraceDumpResponse trace;
  ASSERT_TRUE(decode_trace_dump_response(tr, trace));
  EXPECT_EQ(tr.remaining(), 0u) << "v6 TraceDump body carries trailing bytes";
  server.stop();
}

// QueryJobTimeline is v7-only: a pre-v7 peer asking for it gets a clean
// BadRequest in its own version, not a dropped connection or a reply body
// it cannot decode.
TEST(TimelineCompat, PreV7TimelineRequestsGetBadRequest) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  WireWriter body;
  body.i64(0);
  ResponseEnvelope response = raw_exchange(
      server.port(), 6, MessageType::QueryJobTimeline, 63, body.bytes());
  EXPECT_EQ(response.version, 6);
  EXPECT_EQ(response.status, RpcStatus::BadRequest);
  EXPECT_NE(response.error.find("protocol v7"), std::string::npos)
      << response.error;
  server.stop();
}

// The end-to-end explainability loop: a job submitted over TCP answers a
// timeline that starts at its admission, places it somewhere concrete, and
// stays internally ordered.
TEST(TimelineLoopback, SubmittedJobExplainsItself) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  WorkloadTrace trace = small_trace(7, 6);
  std::int64_t first_id = -1;
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    ASSERT_TRUE(client.submit_job(job, ack).ok());
    if (first_id < 0) first_id = ack.job_id;
  }
  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());

  JobTimelineResponse reply;
  ASSERT_TRUE(client.query_job_timeline(first_id, reply).ok());
  EXPECT_EQ(reply.job_id, first_id);
  EXPECT_FALSE(reply.truncated);
  ASSERT_GE(reply.events.size(), 3u);  // admission, placement, completion
  EXPECT_EQ(reply.events.front().kind, JournalEventKind::Admission);
  bool placed = false, completed = false;
  for (std::size_t i = 0; i < reply.events.size(); ++i) {
    const JournalEvent& event = reply.events[i];
    EXPECT_EQ(event.job_id, first_id);
    if (i > 0) {
      EXPECT_GT(event.seq, reply.events[i - 1].seq);
      EXPECT_GE(event.time, reply.events[i - 1].time);
    }
    if (event.kind == JournalEventKind::Placement) {
      placed = true;
      EXPECT_GE(event.machine, 0);
      EXPECT_GT(event.candidates, 0);
      EXPECT_FALSE(event.policy.empty());  // the solver that placed it
    }
    if (event.kind == JournalEventKind::Completion) completed = true;
  }
  EXPECT_TRUE(placed);
  EXPECT_TRUE(completed);

  // Unknown job: an application error, not a mangled body.
  RpcError unknown = client.query_job_timeline(999, reply);
  EXPECT_EQ(unknown.kind, RpcErrorKind::Application);
  EXPECT_EQ(unknown.app, RpcStatus::UnknownJob);
  server.stop();
}

// Journal overflow over RPC: with a tiny ring the oldest job's early events
// are evicted, and QueryJobTimeline answers the well-formed truncated
// marker — status Ok, truncated flag set — never an error.
TEST(TimelineLoopback, OverflowAnswersTruncatedMarkerNotError) {
  ServerOptions options = loopback_options();
  options.service.scheduler.journal_capacity = 6;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  WorkloadTrace trace = small_trace(11, 12);
  std::int64_t first_id = -1;
  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse ack;
    ASSERT_TRUE(client.submit_job(job, ack).ok());
    if (first_id < 0) first_id = ack.job_id;
  }
  DrainResponse drained;
  ASSERT_TRUE(client.drain(drained).ok());

  // 12 jobs × (admission + placement + completion) plus batch triggers in
  // a 6-slot ring: job 0's admission is long gone.
  JobTimelineResponse reply;
  RpcError rolled = client.query_job_timeline(first_id, reply);
  ASSERT_TRUE(rolled.ok()) << rolled.describe();
  EXPECT_TRUE(reply.truncated);
  for (const JournalEvent& event : reply.events)
    EXPECT_EQ(event.job_id, first_id);
  server.stop();
}

// ------------------------------------------- v8 alert fan-in wire compat

TEST(AlertWire, AlertsResponseRoundTripsAndRejectsCorruption) {
  AlertsResponse reply;
  reply.engine_enabled = true;
  reply.firing = 1;
  AlertEntry fast;
  fast.shard_id = -1;
  fast.rule = "rpc_latency_burn_fast";
  fast.state = 2;     // firing
  fast.severity = 2;  // critical
  fast.value = 9.5;
  fast.threshold = 8.0;
  fast.since_seconds = 12.5;
  fast.detail = "fast=9.5 slow=8.2";
  AlertEntry quiet;
  quiet.shard_id = 3;
  quiet.rule = "deep_queue";
  quiet.state = 0;
  quiet.severity = 1;
  reply.alerts = {fast, quiet};

  WireWriter w;
  encode_alerts_response(w, reply);
  WireReader r(w.bytes());
  AlertsResponse got;
  got.alerts.push_back({});  // decoder must reset, not append
  ASSERT_TRUE(decode_alerts_response(r, got));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(got.engine_enabled);
  EXPECT_EQ(got.firing, 1u);
  ASSERT_EQ(got.alerts.size(), 2u);
  EXPECT_EQ(got.alerts[0].shard_id, -1);
  EXPECT_EQ(got.alerts[0].rule, "rpc_latency_burn_fast");
  EXPECT_EQ(got.alerts[0].state, 2);
  EXPECT_EQ(got.alerts[0].severity, 2);
  EXPECT_EQ(got.alerts[0].value, 9.5);
  EXPECT_EQ(got.alerts[0].threshold, 8.0);
  EXPECT_EQ(got.alerts[0].since_seconds, 12.5);
  EXPECT_EQ(got.alerts[0].detail, "fast=9.5 slow=8.2");
  EXPECT_EQ(got.alerts[1].shard_id, 3);
  EXPECT_EQ(got.alerts[1].rule, "deep_queue");

  // A truncated body is rejected, not misread.
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 4);
  WireReader truncated(bytes);
  EXPECT_FALSE(decode_alerts_response(truncated, got));

  // Out-of-range state / severity bytes are corruption, not extensions.
  AlertsResponse bad_state = reply;
  bad_state.alerts[0].state = 9;
  WireWriter ws;
  encode_alerts_response(ws, bad_state);
  WireReader rs(ws.bytes());
  EXPECT_FALSE(decode_alerts_response(rs, got));

  AlertsResponse bad_severity = reply;
  bad_severity.alerts[1].severity = 7;
  WireWriter wv;
  encode_alerts_response(wv, bad_severity);
  WireReader rv(wv.bytes());
  EXPECT_FALSE(decode_alerts_response(rv, got));
}

// GetAlerts is v8-only: a pre-v8 peer asking for it gets a clean
// BadRequest in its own version, not a dropped connection.
TEST(AlertCompat, PreV8AlertRequestsGetBadRequest) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ResponseEnvelope response =
      raw_exchange(server.port(), 7, MessageType::GetAlerts, 81, {});
  EXPECT_EQ(response.version, 7);
  EXPECT_EQ(response.status, RpcStatus::BadRequest);
  EXPECT_NE(response.error.find("protocol v8"), std::string::npos)
      << response.error;

  // A v8 GetAlerts with a non-empty body is malformed too.
  ResponseEnvelope trailing =
      raw_exchange(server.port(), 8, MessageType::GetAlerts, 82, {1});
  EXPECT_EQ(trailing.status, RpcStatus::BadRequest);
  server.stop();
}

// A v7 peer against a v8 server keeps getting byte-identical replies: the
// GetMetrics body still ends after its last v7 block and TraceDump decodes
// with nothing trailing. The alert fan-in rides GetAlerts only.
TEST(AlertCompat, V7RepliesArePinnedUnderV8Server) {
  ServerOptions options = loopback_options();
  options.shard_id = 4;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ResponseEnvelope metrics_reply =
      raw_exchange(server.port(), 7, MessageType::GetMetrics, 71, {});
  EXPECT_EQ(metrics_reply.version, 7);
  ASSERT_EQ(metrics_reply.status, RpcStatus::Ok) << metrics_reply.error;
  WireReader mr(metrics_reply.body);
  MetricsResponse metrics;
  ASSERT_TRUE(decode_metrics_response(mr, metrics));
  EXPECT_EQ(mr.remaining(), 0u) << "v7 GetMetrics body carries trailing bytes";
  EXPECT_EQ(metrics.shard_id, 4);

  ResponseEnvelope trace_reply =
      raw_exchange(server.port(), 7, MessageType::TraceDump, 72, {});
  EXPECT_EQ(trace_reply.version, 7);
  ASSERT_EQ(trace_reply.status, RpcStatus::Ok) << trace_reply.error;
  WireReader tr(trace_reply.body);
  TraceDumpResponse trace;
  ASSERT_TRUE(decode_trace_dump_response(tr, trace));
  EXPECT_EQ(tr.remaining(), 0u) << "v7 TraceDump body carries trailing bytes";
  server.stop();
}

// GetAlerts against a live server: the default watchdog rules answer with
// their states (idle server: everything inactive, nothing firing), and
// switching the engine off answers engine_enabled=false rather than an
// error — a fleet dashboard can always ask.
TEST(AlertLoopback, GetAlertsReportsRuleStates) {
  CoschedServer server(loopback_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  CoschedClient client(client_for(server));

  AlertsResponse reply;
  RpcError status = client.get_alerts(reply);
  ASSERT_TRUE(status.ok()) << status.describe();
  if (kAlertsDisabled) {
    EXPECT_FALSE(reply.engine_enabled);
    server.stop();
    return;
  }
  EXPECT_TRUE(reply.engine_enabled);
  EXPECT_EQ(reply.firing, 0u);
  ASSERT_EQ(reply.alerts.size(), 2u);  // the default burn-rate pair
  EXPECT_EQ(reply.alerts[0].rule, "rpc_latency_burn_fast");
  EXPECT_EQ(reply.alerts[1].rule, "rpc_latency_burn_slow");
  for (const AlertEntry& entry : reply.alerts) {
    EXPECT_EQ(entry.shard_id, -1);  // the answering instance itself
    EXPECT_EQ(entry.state, 0);      // inactive on an idle server
  }
  server.stop();

  ServerOptions off = loopback_options();
  off.enable_alerts = false;
  CoschedServer dark(off);
  ASSERT_TRUE(dark.start(error)) << error;
  CoschedClient dark_client(client_for(dark));
  AlertsResponse none;
  ASSERT_TRUE(dark_client.get_alerts(none).ok());
  EXPECT_FALSE(none.engine_enabled);
  EXPECT_TRUE(none.alerts.empty());
  dark.stop();
}

}  // namespace
}  // namespace cosched
