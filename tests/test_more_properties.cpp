// Additional property tests: reference-model checks for the bitset, cache
// monotonicity, simplex degenerate systems, IP/objective consistency on
// mixes, comm model in 3D.
#include <gtest/gtest.h>

#include <vector>

#include "cache/lru_cache_sim.hpp"
#include "cache/trace_gen.hpp"
#include "comm/comm_topology.hpp"
#include "comm/decomposition.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"
#include "ip/simplex.hpp"
#include "test_helpers.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"

namespace cosched {
namespace {

// ------------------------------ bitset vs std::vector<bool> reference model

TEST(DynamicBitsetModel, RandomOpsMatchReference) {
  Rng rng(31);
  const std::size_t n = 203;  // deliberately not a multiple of 64
  DynamicBitset bits(n);
  std::vector<bool> ref(n, false);
  for (int step = 0; step < 5000; ++step) {
    std::size_t pos = rng.uniform(n);
    switch (rng.uniform(3)) {
      case 0:
        bits.set(pos);
        ref[pos] = true;
        break;
      case 1:
        bits.reset(pos);
        ref[pos] = false;
        break;
      default:
        ASSERT_EQ(bits.test(pos), ref[pos]) << "step " << step;
    }
    if (step % 257 == 0) {
      std::size_t ref_count = 0;
      for (bool b : ref) ref_count += b;
      ASSERT_EQ(bits.count(), ref_count) << "step " << step;
      // find_first_clear agrees with the reference.
      std::size_t expect = n;
      for (std::size_t i = 0; i < n; ++i)
        if (!ref[i]) {
          expect = i;
          break;
        }
      ASSERT_EQ(bits.find_first_clear(), expect) << "step " << step;
    }
  }
}

// ----------------------------------------------- cache miss monotonicity

TEST(CacheProperties, MissRateGrowsWithWorkingSet) {
  CacheConfig cache{64, 16, 64};  // 1024 lines
  Real prev_rate = -1.0;
  for (std::uint64_t lines : {256u, 1024u, 4096u, 16384u}) {
    LocalitySpec spec;
    spec.regions.push_back({lines, 1.0, 1, 0.0});
    TraceGenerator gen(spec, 5);
    auto res = LruCacheSim::simulate(cache, gen.generate(60000));
    EXPECT_GE(res.miss_rate(), prev_rate - 1e-9)
        << "working set " << lines;
    prev_rate = res.miss_rate();
  }
  EXPECT_GT(prev_rate, 0.9);  // 16x-cache-size stream thrashes completely
}

TEST(CacheProperties, AssociativityNeverHurtsUnderLru) {
  // With the same sets*ways capacity split differently, higher
  // associativity cannot increase misses for a cyclic working set that
  // fits the cache (LRU inclusion property applies per set; the cyclic
  // walk is the adversarial case for low associativity).
  LocalitySpec spec;
  spec.regions.push_back({512, 1.0, 1, 0.0});
  TraceGenerator gen_a(spec, 9);
  auto trace = gen_a.generate(40000);
  auto low = LruCacheSim::simulate(CacheConfig{64, 2, 512}, trace);
  auto high = LruCacheSim::simulate(CacheConfig{64, 16, 64}, trace);
  EXPECT_LE(high.misses, low.misses + 600u);  // equal capacity, small slack
}

// -------------------------------------------------- simplex degeneracy

TEST(SimplexEdge, RedundantEqualityRowsStaySolvable) {
  // x + y = 2 stated twice plus a consistent scaled copy.
  LinearProgram lp;
  auto x = lp.add_variable(1.0, 0.0, 5.0);
  auto y = lp.add_variable(2.0, 0.0, 5.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::EQ, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::EQ, 2.0);
  lp.add_row({{x, 2.0}, {y, 2.0}}, LinearProgram::RowType::EQ, 4.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);  // x=2, y=0
}

TEST(SimplexEdge, ConflictingEqualitiesAreInfeasible) {
  LinearProgram lp;
  auto x = lp.add_variable(1.0, 0.0, 5.0);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::EQ, 2.0);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::EQ, 3.0);
  auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(SimplexEdge, AllVariablesFixed) {
  LinearProgram lp;
  auto x = lp.add_variable(3.0, 1.0, 1.0);
  auto y = lp.add_variable(-1.0, 2.0, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::LE, 10.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);  // 3*1 - 1*2
}

// -------------------------------------- IP objective == evaluated decode

TEST(IpConsistency, ObjectiveMatchesEvaluatedSolutionOnMixes) {
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    Problem p = testhelpers::random_pe_problem(4, {3}, 2, seed);
    auto model = build_ip_model(p, *p.full_model,
                                Aggregation::MaxPerParallelJob);
    auto result = solve_branch_and_bound(model);
    ASSERT_TRUE(result.optimal) << "seed " << seed;
    auto ev = evaluate_solution(p, result.solution);
    EXPECT_NEAR(ev.total, result.objective, 1e-6) << "seed " << seed;
  }
}

// ----------------------------------------------------- comm model in 3D

TEST(CommProperties, ExternalBytesShrinkAsCoRunnersJoin) {
  CommTopology topo;
  topo.attach(0, 0, make_3d_pattern(2, 2, 2, 10.0, 20.0, 40.0));
  // Rank 0's neighbours: +x (rank 1, 10B), +y (rank 2, 20B), +z (rank 4, 40B).
  std::vector<ProcessId> none;
  EXPECT_DOUBLE_EQ(topo.external_bytes(0, none), 70.0);
  ProcessId one[1] = {1};
  EXPECT_DOUBLE_EQ(topo.external_bytes(0, one), 60.0);
  ProcessId two[2] = {1, 4};
  EXPECT_DOUBLE_EQ(topo.external_bytes(0, two), 20.0);
  ProcessId all3[3] = {1, 2, 4};
  EXPECT_DOUBLE_EQ(topo.external_bytes(0, all3), 0.0);
}

TEST(CommProperties, PropertyCountsPerDirectionIn3d) {
  CommTopology topo;
  topo.attach(0, 0, make_3d_pattern(2, 2, 2, 1.0, 1.0, 1.0));
  // Node {0, 1}: x-edge internal; each member has 1 y- and 1 z-neighbour
  // outside -> (0, 2, 2).
  std::vector<ProcessId> node{0, 1};
  auto prop = topo.comm_property(0, node);
  EXPECT_EQ(prop[0], 0);
  EXPECT_EQ(prop[1], 2);
  EXPECT_EQ(prop[2], 2);
}

}  // namespace
}  // namespace cosched
