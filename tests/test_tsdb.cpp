// MetricsTsdb: the bounded in-memory store behind the alert engine.
// Every test drives scrape_text with a synthetic clock — no sleeping.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/tsdb.hpp"

namespace cosched {
namespace {

std::string gauge_line(const std::string& name, double value) {
  return name + " " + format_prometheus_value(value) + "\n";
}

TEST(Tsdb, CounterNameClassification) {
  EXPECT_TRUE(tsdb_counter_name("cosched_rpc_requests_total"));
  EXPECT_TRUE(tsdb_counter_name("cosched_rpc_request_seconds_count"));
  EXPECT_TRUE(tsdb_counter_name("cosched_rpc_request_seconds_sum"));
  EXPECT_TRUE(tsdb_counter_name("cosched_rpc_request_seconds_bucket"));
  EXPECT_FALSE(tsdb_counter_name("cosched_rpc_queue_depth"));
  EXPECT_FALSE(tsdb_counter_name("cosched_virtual_now"));
}

TEST(Tsdb, ScrapeAndLatest) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text("cosched_queue_depth 3\n"
                               "cosched_requests_total 10\n",
                               0.0));
  ASSERT_TRUE(tsdb.scrape_text("cosched_queue_depth 7\n"
                               "cosched_requests_total 25\n",
                               1.0));
  double value = 0.0;
  ASSERT_TRUE(tsdb.latest("cosched_queue_depth", value));
  EXPECT_DOUBLE_EQ(value, 7.0);
  ASSERT_TRUE(tsdb.latest("cosched_requests_total", value));
  EXPECT_DOUBLE_EQ(value, 25.0);
  EXPECT_FALSE(tsdb.latest("cosched_no_such_series", value));

  TsdbStats stats = tsdb.stats();
  EXPECT_EQ(stats.series, 2u);
  EXPECT_EQ(stats.scrapes, 2u);
  EXPECT_EQ(stats.points_ingested, 4u);
}

TEST(Tsdb, MalformedExpositionIngestsNothing) {
  MetricsTsdb tsdb;
  EXPECT_FALSE(tsdb.scrape_text("cosched_queue_depth not_a_number\n", 0.0));
  EXPECT_EQ(tsdb.stats().scrapes, 0u);
  EXPECT_EQ(tsdb.stats().points_ingested, 0u);
}

TEST(Tsdb, WindowStatAggregatesGauges) {
  MetricsTsdb tsdb;
  for (int t = 0; t < 5; ++t)
    ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_depth", 1.0 + t),
                                 static_cast<double>(t)));
  double value = 0.0;
  ASSERT_TRUE(tsdb.window_stat("cosched_depth", 10.0, 4.0,
                               MetricsTsdb::Stat::Avg, value));
  EXPECT_DOUBLE_EQ(value, 3.0);
  ASSERT_TRUE(tsdb.window_stat("cosched_depth", 10.0, 4.0,
                               MetricsTsdb::Stat::Min, value));
  EXPECT_DOUBLE_EQ(value, 1.0);
  ASSERT_TRUE(tsdb.window_stat("cosched_depth", 10.0, 4.0,
                               MetricsTsdb::Stat::Max, value));
  EXPECT_DOUBLE_EQ(value, 5.0);
  // A narrower window drops the old points.
  ASSERT_TRUE(tsdb.window_stat("cosched_depth", 2.0, 4.0,
                               MetricsTsdb::Stat::Min, value));
  EXPECT_DOUBLE_EQ(value, 3.0);
  EXPECT_FALSE(tsdb.window_stat("cosched_unknown", 10.0, 4.0,
                                MetricsTsdb::Stat::Avg, value));
}

TEST(Tsdb, CounterDeltaAndRate) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_reqs_total", 0.0), 0.0));
  ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_reqs_total", 100.0), 10.0));
  double delta = 0.0, span = 0.0, rate = 0.0;
  ASSERT_TRUE(tsdb.counter_delta("cosched_reqs_total", 60.0, 10.0, delta, span));
  EXPECT_DOUBLE_EQ(delta, 100.0);
  EXPECT_DOUBLE_EQ(span, 10.0);
  ASSERT_TRUE(tsdb.counter_rate("cosched_reqs_total", 60.0, 10.0, rate));
  EXPECT_DOUBLE_EQ(rate, 10.0);
  // A single point cannot answer a delta.
  MetricsTsdb fresh;
  ASSERT_TRUE(fresh.scrape_text(gauge_line("cosched_reqs_total", 5.0), 0.0));
  EXPECT_FALSE(fresh.counter_delta("cosched_reqs_total", 60.0, 0.0, delta,
                                   span));
}

TEST(Tsdb, CounterResetRestartsBaselineAtZero) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_reqs_total", 100.0), 0.0));
  ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_reqs_total", 20.0), 1.0));
  double delta = 0.0, span = 0.0;
  ASSERT_TRUE(tsdb.counter_delta("cosched_reqs_total", 60.0, 1.0, delta, span));
  EXPECT_DOUBLE_EQ(delta, 20.0);  // restart: everything since the reset
}

TEST(Tsdb, RawEvictionIsExactlyAccounted) {
  TsdbOptions options;
  options.raw_capacity = 4;
  MetricsTsdb tsdb(options);
  for (int t = 0; t < 10; ++t)
    ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_depth", t),
                                 static_cast<double>(t)));
  TsdbStats stats = tsdb.stats();
  EXPECT_EQ(stats.points_ingested, 10u);
  EXPECT_EQ(stats.resident_raw, 4u);
  EXPECT_EQ(stats.evicted_raw, 6u);
}

TEST(Tsdb, RollupsAnswerWindowsBeyondRawRetention) {
  TsdbOptions options;
  options.raw_capacity = 5;  // raw retains only the newest 5 seconds
  MetricsTsdb tsdb(options);
  // Two minutes of 1 Hz scrapes: a monotone counter and a gauge.
  for (int t = 0; t < 120; ++t)
    ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_reqs_total", t) +
                                     gauge_line("cosched_depth", t % 10),
                                 static_cast<double>(t)));
  // The 2-minute window outlives raw retention but the 10 s rollup ring
  // still reaches t=0, so the counter delta spans the whole run.
  double delta = 0.0, span = 0.0;
  ASSERT_TRUE(
      tsdb.counter_delta("cosched_reqs_total", 120.0, 119.0, delta, span));
  EXPECT_DOUBLE_EQ(delta, 119.0);
  EXPECT_GT(span, 100.0);
  double value = 0.0;
  ASSERT_TRUE(tsdb.window_stat("cosched_depth", 120.0, 119.0,
                               MetricsTsdb::Stat::Max, value));
  EXPECT_DOUBLE_EQ(value, 9.0);
  TsdbStats stats = tsdb.stats();
  EXPECT_GT(stats.resident_rollup_10s, 0u);
  EXPECT_GT(stats.resident_rollup_1m, 0u);
}

TEST(Tsdb, SeriesCapRejectsAndCounts) {
  TsdbOptions options;
  options.max_series = 2;
  MetricsTsdb tsdb(options);
  ASSERT_TRUE(tsdb.scrape_text("cosched_a 1\ncosched_b 2\ncosched_c 3\n", 0.0));
  TsdbStats stats = tsdb.stats();
  EXPECT_EQ(stats.series, 2u);
  EXPECT_EQ(stats.series_rejected, 1u);
  double value = 0.0;
  EXPECT_FALSE(tsdb.latest("cosched_c", value));
  // The rejected series stays rejected on later scrapes too.
  ASSERT_TRUE(tsdb.scrape_text("cosched_c 4\n", 1.0));
  EXPECT_EQ(tsdb.stats().series_rejected, 2u);
}

std::string histogram_scrape(double le_small, double le_inf) {
  std::string text;
  text += "cosched_lat_seconds_bucket{le=\"0.1\"} " +
          format_prometheus_value(le_small) + "\n";
  text += "cosched_lat_seconds_bucket{le=\"0.5\"} " +
          format_prometheus_value(le_inf) + "\n";
  text += "cosched_lat_seconds_bucket{le=\"+Inf\"} " +
          format_prometheus_value(le_inf) + "\n";
  return text;
}

TEST(Tsdb, HistogramQuantileInterpolatesWindowedDeltas) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(0.0, 0.0), 0.0));
  // 100 samples over the window: 50 below 0.1 s, 50 in (0.1, 0.5].
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(50.0, 100.0), 10.0));
  double q = 0.0;
  ASSERT_TRUE(tsdb.histogram_quantile("cosched_lat_seconds", 0.5, 60.0, 10.0, q));
  EXPECT_NEAR(q, 0.1, 1e-9);
  ASSERT_TRUE(tsdb.histogram_quantile("cosched_lat_seconds", 0.25, 60.0, 10.0, q));
  EXPECT_NEAR(q, 0.05, 1e-9);
  ASSERT_TRUE(tsdb.histogram_quantile("cosched_lat_seconds", 0.75, 60.0, 10.0, q));
  EXPECT_NEAR(q, 0.3, 1e-9);
}

TEST(Tsdb, HistogramBadFractionSplitsTheStraddlingBucket) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(0.0, 0.0), 0.0));
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(50.0, 100.0), 10.0));
  double bad = 0.0, total = 0.0;
  // Exactly at the first edge: everything in the wider bucket is bad.
  ASSERT_TRUE(tsdb.histogram_bad_fraction("cosched_lat_seconds", 0.1, 60.0,
                                          10.0, bad, total));
  EXPECT_NEAR(bad, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(total, 100.0);
  // Halfway through the (0.1, 0.5] bucket: half its mass interpolates away.
  ASSERT_TRUE(tsdb.histogram_bad_fraction("cosched_lat_seconds", 0.3, 60.0,
                                          10.0, bad, total));
  EXPECT_NEAR(bad, 0.25, 1e-9);
  // Beyond every finite edge: nothing is bad.
  ASSERT_TRUE(tsdb.histogram_bad_fraction("cosched_lat_seconds", 0.6, 60.0,
                                          10.0, bad, total));
  EXPECT_NEAR(bad, 0.0, 1e-9);
}

TEST(Tsdb, HistogramOverflowCreditsWidestFiniteEdge) {
  MetricsTsdb tsdb;
  // All mass lands above every finite edge.
  std::string t0 = "cosched_lat_seconds_bucket{le=\"0.1\"} 0\n"
                   "cosched_lat_seconds_bucket{le=\"+Inf\"} 0\n";
  std::string t1 = "cosched_lat_seconds_bucket{le=\"0.1\"} 0\n"
                   "cosched_lat_seconds_bucket{le=\"+Inf\"} 10\n";
  ASSERT_TRUE(tsdb.scrape_text(t0, 0.0));
  ASSERT_TRUE(tsdb.scrape_text(t1, 1.0));
  double q = 0.0;
  ASSERT_TRUE(tsdb.histogram_quantile("cosched_lat_seconds", 0.99, 60.0, 1.0, q));
  EXPECT_DOUBLE_EQ(q, 0.1);
}

TEST(Tsdb, HistogramWithNoWindowedSamplesAnswersFalse) {
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(50.0, 100.0), 0.0));
  ASSERT_TRUE(tsdb.scrape_text(histogram_scrape(50.0, 100.0), 1.0));
  double q = 0.0, bad = 0.0, total = 0.0;
  // Counts did not move: zero windowed delta means no evidence.
  EXPECT_FALSE(
      tsdb.histogram_quantile("cosched_lat_seconds", 0.5, 60.0, 1.0, q));
  EXPECT_FALSE(tsdb.histogram_bad_fraction("cosched_lat_seconds", 0.1, 60.0,
                                           1.0, bad, total));
  EXPECT_FALSE(tsdb.histogram_quantile("cosched_nothing", 0.5, 60.0, 1.0, q));
}

TEST(Tsdb, RenderMetricsRoundTrips) {
  TsdbOptions options;
  options.raw_capacity = 2;
  MetricsTsdb tsdb(options);
  for (int t = 0; t < 5; ++t)
    ASSERT_TRUE(tsdb.scrape_text(gauge_line("cosched_depth", t),
                                 static_cast<double>(t)));
  std::string text = render_tsdb_metrics(tsdb);
  EXPECT_NE(text.find("cosched_tsdb_series 1"), std::string::npos);
  EXPECT_NE(text.find("cosched_tsdb_scrapes_total 5"), std::string::npos);
  EXPECT_NE(
      text.find("cosched_tsdb_points_evicted_total{resolution=\"raw\"} 3"),
      std::string::npos);
  std::vector<PrometheusSample> samples;
  EXPECT_TRUE(parse_prometheus_text(text, samples));
  EXPECT_FALSE(samples.empty());
}

TEST(Tsdb, ScrapeRegistryRender) {
  MetricsRegistry registry;
  registry.counter("cosched_test_scrape_total", "scrape test").inc(3);
  MetricsTsdb tsdb;
  ASSERT_TRUE(tsdb.scrape(registry, 0.0));
  double value = 0.0;
  ASSERT_TRUE(tsdb.latest("cosched_test_scrape_total", value));
  EXPECT_DOUBLE_EQ(value, 3.0);
}

}  // namespace
}  // namespace cosched
