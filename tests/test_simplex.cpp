// Unit tests for the bounded-variable two-phase simplex.
#include <gtest/gtest.h>

#include "ip/simplex.hpp"
#include "util/rng.hpp"

namespace cosched {
namespace {

TEST(Simplex, TrivialTwoVarLp) {
  // min -x - 2y  s.t. x + y <= 4, x in [0,3], y in [0,2]. Optimum x=2,y=2.
  LinearProgram lp;
  auto x = lp.add_variable(-1.0, 0.0, 3.0);
  auto y = lp.add_variable(-2.0, 0.0, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::LE, 4.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -6.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  LinearProgram lp;
  auto x = lp.add_variable(1.0, 0.0, 10.0);
  auto y = lp.add_variable(1.0, 0.0, 10.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::EQ, 5.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 5.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + 3y  s.t. x + y >= 4. Optimum x=4, y=0.
  LinearProgram lp;
  auto x = lp.add_variable(2.0, 0.0, kInfinity);
  auto y = lp.add_variable(3.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::GE, 4.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  auto x = lp.add_variable(1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::LE, 1.0);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::GE, 3.0);
  auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  auto x = lp.add_variable(-1.0, 0.0, kInfinity);
  auto y = lp.add_variable(0.0, 0.0, 1.0);
  lp.add_row({{y, 1.0}}, LinearProgram::RowType::LE, 1.0);
  auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Unbounded);
  (void)x;
}

TEST(Simplex, RespectsVariableUpperBounds) {
  LinearProgram lp;
  auto x = lp.add_variable(-1.0, 0.0, 7.0);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::LE, 100.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[0], 7.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x  s.t. x + y >= -2, x in [-5,5], y in [0,1]. Optimum x=-3 (y=1).
  LinearProgram lp;
  auto x = lp.add_variable(1.0, -5.0, 5.0);
  auto y = lp.add_variable(0.0, 0.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::GE, -2.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -3.0, 1e-9);
}

TEST(Simplex, DegenerateLpTerminates) {
  LinearProgram lp;
  auto x = lp.add_variable(-1.0, 0.0, kInfinity);
  auto y = lp.add_variable(-1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}}, LinearProgram::RowType::LE, 2.0);
  lp.add_row({{x, 1.0}, {y, 0.0}}, LinearProgram::RowType::LE, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::LE, 4.0);
  lp.add_row({{y, 1.0}}, LinearProgram::RowType::LE, 2.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers {20,30}, 3 consumers {10,25,15}, costs {2,4,6;5,1,3}.
  // Optimum 120: x00=10, x02=10, x11=25, x12=5.
  LinearProgram lp;
  std::int32_t v[2][3];
  Real cost[2][3] = {{2, 4, 6}, {5, 1, 3}};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      v[i][j] = lp.add_variable(cost[i][j], 0.0, kInfinity);
  lp.add_row({{v[0][0], 1.0}, {v[0][1], 1.0}, {v[0][2], 1.0}},
             LinearProgram::RowType::LE, 20.0);
  lp.add_row({{v[1][0], 1.0}, {v[1][1], 1.0}, {v[1][2], 1.0}},
             LinearProgram::RowType::LE, 30.0);
  lp.add_row({{v[0][0], 1.0}, {v[1][0], 1.0}}, LinearProgram::RowType::GE,
             10.0);
  lp.add_row({{v[0][1], 1.0}, {v[1][1], 1.0}}, LinearProgram::RowType::GE,
             25.0);
  lp.add_row({{v[0][2], 1.0}, {v[1][2], 1.0}}, LinearProgram::RowType::GE,
             15.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 120.0, 1e-7);
}

TEST(Simplex, SetPartitioningRelaxationIsTight) {
  // Partition {0,1,2,3} into pairs; costs make ({0,1},{2,3}) optimal at 3.
  LinearProgram lp;
  struct Col {
    int a, b;
    Real c;
  };
  std::vector<Col> cols{{0, 1, 1}, {0, 2, 5}, {0, 3, 5},
                        {1, 2, 5}, {1, 3, 5}, {2, 3, 2}};
  std::vector<std::int32_t> vars;
  for (const auto& c : cols) vars.push_back(lp.add_variable(c.c, 0.0, 1.0));
  for (int item = 0; item < 4; ++item) {
    std::vector<std::pair<std::int32_t, Real>> coeffs;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k].a == item || cols[k].b == item)
        coeffs.push_back({vars[k], 1.0});
    lp.add_row(std::move(coeffs), LinearProgram::RowType::EQ, 1.0);
  }
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[5], 1.0, 1e-9);
}

TEST(Simplex, FixedVariableStaysFixed) {
  LinearProgram lp;
  auto x = lp.add_variable(-10.0, 0.5, 0.5);
  auto y = lp.add_variable(-1.0, 0.0, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, LinearProgram::RowType::LE, 2.0);
  auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[0], 0.5, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-9);
}

TEST(Simplex, RandomLpsAreFeasibleAndNoWorseThanReference) {
  // Random LE-form LPs built around a known feasible reference point: the
  // solver must return a feasible point at least as good.
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int nv = 3 + static_cast<int>(rng.uniform(5));
    const int nr = 2 + static_cast<int>(rng.uniform(3));
    LinearProgram lp;
    std::vector<Real> ref;
    for (int j = 0; j < nv; ++j) {
      Real ub = 1.0 + rng.uniform01() * 3.0;
      lp.add_variable(rng.uniform_real(-2.0, 2.0), 0.0, ub);
      ref.push_back(rng.uniform_real(0.0, ub));
    }
    std::vector<std::vector<Real>> dense_rows;
    for (int i = 0; i < nr; ++i) {
      std::vector<std::pair<std::int32_t, Real>> coeffs;
      std::vector<Real> dense(static_cast<std::size_t>(nv), 0.0);
      Real lhs_at_ref = 0.0;
      for (int j = 0; j < nv; ++j) {
        Real a = rng.uniform_real(-1.0, 1.0);
        dense[static_cast<std::size_t>(j)] = a;
        coeffs.push_back({j, a});
        lhs_at_ref += a * ref[static_cast<std::size_t>(j)];
      }
      lp.add_row(std::move(coeffs), LinearProgram::RowType::LE,
                 lhs_at_ref + 0.5);
      dense_rows.push_back(std::move(dense));
    }
    auto sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
    for (int i = 0; i < nr; ++i) {
      Real lhs = 0.0;
      for (int j = 0; j < nv; ++j)
        lhs += dense_rows[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j)] *
               sol.x[static_cast<std::size_t>(j)];
      EXPECT_LE(lhs, lp.row(i).rhs + 1e-7) << "trial " << trial;
    }
    for (int j = 0; j < nv; ++j) {
      EXPECT_GE(sol.x[static_cast<std::size_t>(j)], lp.lower(j) - 1e-7);
      EXPECT_LE(sol.x[static_cast<std::size_t>(j)], lp.upper(j) + 1e-7);
    }
    Real ref_obj = 0.0;
    for (int j = 0; j < nv; ++j)
      ref_obj += lp.cost(j) * ref[static_cast<std::size_t>(j)];
    EXPECT_LE(sol.objective, ref_obj + 1e-7) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cosched
