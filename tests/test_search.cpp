// Tests for the OA*/O-SVP search engine: optimality against brute force,
// heuristic strategies, dismissal policies, valid-path semantics.
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pc_problem;
using testhelpers::random_pe_problem;
using testhelpers::random_serial_problem;

void expect_valid(const Problem& p, const SearchResult& r) {
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.timed_out);
  validate_solution(p, r.solution);
}

// ------------------------------------------------- optimality (serial jobs)

class OaStarSerialOptimality
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OaStarSerialOptimality, MatchesBruteForce) {
  auto [jobs, cores, seed] = GetParam();
  Problem p = random_serial_problem(jobs, static_cast<std::uint32_t>(cores),
                                    static_cast<std::uint64_t>(seed));
  auto brute = solve_brute_force(p);
  auto oastar = solve_oastar(p);
  expect_valid(p, oastar);
  EXPECT_NEAR(oastar.objective, brute.objective, 1e-9)
      << "jobs=" << jobs << " cores=" << cores << " seed=" << seed;
  // The returned solution must actually evaluate to the claimed objective.
  auto ev = evaluate_solution(p, oastar.solution);
  EXPECT_NEAR(ev.total, oastar.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OaStarSerialOptimality,
    ::testing::Values(std::tuple{4, 2, 1}, std::tuple{6, 2, 2},
                      std::tuple{8, 2, 3}, std::tuple{10, 2, 4},
                      std::tuple{12, 2, 5}, std::tuple{8, 4, 6},
                      std::tuple{12, 4, 7}, std::tuple{16, 4, 8},
                      std::tuple{7, 4, 9},   // padding path (7 -> 8)
                      std::tuple{9, 2, 10},  // padding path (9 -> 10)
                      std::tuple{8, 8, 11}, std::tuple{16, 8, 12}));

// --------------------------------------------- optimality (PE / PC mixes)

class OaStarParallelOptimality
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(OaStarParallelOptimality, MatchesBruteForceWithParetoDismissal) {
  auto [serial, psize, cores, with_comm] = GetParam();
  Problem p =
      with_comm
          ? random_pc_problem(serial, {psize, psize}, cores, 99)
          : random_pe_problem(serial, {psize, psize}, cores, 99);
  auto brute = solve_brute_force(p);
  SearchOptions opt;
  opt.dismiss = DismissPolicy::ParetoDominance;  // exact for parallel jobs
  auto oastar = solve_oastar(p, opt);
  expect_valid(p, oastar);
  EXPECT_NEAR(oastar.objective, brute.objective, 1e-9);
  auto ev = evaluate_solution(p, oastar.solution);
  EXPECT_NEAR(ev.total, oastar.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OaStarParallelOptimality,
                         ::testing::Values(std::tuple{4, 2, 2, false},
                                           std::tuple{4, 3, 2, false},
                                           std::tuple{2, 3, 4, false},
                                           std::tuple{6, 3, 4, false},
                                           std::tuple{4, 2, 2, true},
                                           std::tuple{2, 3, 4, true},
                                           std::tuple{6, 3, 4, true}));

TEST(OaStarParallel, PaperDismissalIsNearOptimalButNotExact) {
  // Empirical finding (documented in DESIGN.md §3): the paper's
  // min-distance dismissal (Theorem 1) is NOT exact once parallel jobs
  // introduce max-aggregation — two subpaths over the same process set can
  // trade a larger current distance for smaller per-job maxima that pay
  // off later. Observed gaps reach tens of percent on threshold-shaped
  // landscapes; DismissPolicy::ParetoDominance (tested above) restores
  // exactness. The ablation_dismissal bench quantifies the distribution.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Problem p = random_pe_problem(4, {3}, 2, seed);
    auto brute = solve_brute_force(p);
    auto oastar = solve_oastar(p);  // default: PaperMinDistance
    ASSERT_TRUE(oastar.found);
    EXPECT_GE(oastar.objective, brute.objective - 1e-9) << "seed " << seed;
    EXPECT_LE(oastar.objective, brute.objective * 1.50 + 1e-9)
        << "seed " << seed;
  }
}

// ----------------------------------------------------------- h(v) behavior

TEST(Heuristics, BothStrategiesReachTheSameOptimum) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Problem p = random_serial_problem(12, 4, seed);
    SearchOptions s1;
    s1.heuristic = HeuristicKind::Strategy1;
    SearchOptions s2;
    s2.heuristic = HeuristicKind::Strategy2;
    auto r1 = solve_oastar(p, s1);
    auto r2 = solve_oastar(p, s2);
    ASSERT_TRUE(r1.found && r2.found);
    EXPECT_NEAR(r1.objective, r2.objective, 1e-9);
  }
}

TEST(Heuristics, Strategy2PrunesMoreThanStrategy1) {
  // The paper's Table IV headline: Strategy 2 visits fewer paths. Per-
  // instance the two can land close, so compare aggregates over seeds.
  std::uint64_t s1_paths = 0, s2_paths = 0;
  for (std::uint64_t seed : {42u, 43u, 44u, 45u}) {
    Problem p = random_serial_problem(16, 4, seed);
    SearchOptions s1;
    s1.heuristic = HeuristicKind::Strategy1;
    SearchOptions s2;
    s2.heuristic = HeuristicKind::Strategy2;
    auto r1 = solve_oastar(p, s1);
    auto r2 = solve_oastar(p, s2);
    EXPECT_NEAR(r1.objective, r2.objective, 1e-9) << "seed " << seed;
    s1_paths += r1.stats.visited_paths;
    s2_paths += r2.stats.visited_paths;
  }
  EXPECT_LT(s2_paths, s1_paths);
}

TEST(Heuristics, OsvpVisitsAtLeastAsManyPathsAsOaStar) {
  Problem p = random_serial_problem(12, 4, 21);
  auto osvp = solve_osvp(p);
  auto oastar = solve_oastar(p);
  ASSERT_TRUE(osvp.found && oastar.found);
  EXPECT_NEAR(osvp.objective, oastar.objective, 1e-9);  // both optimal
  EXPECT_GE(osvp.stats.visited_paths, oastar.stats.visited_paths);
}

TEST(Heuristics, OsvpIsOptimalDijkstra) {
  for (std::uint64_t seed : {31u, 32u}) {
    Problem p = random_serial_problem(8, 4, seed);
    auto brute = solve_brute_force(p);
    auto osvp = solve_osvp(p);
    ASSERT_TRUE(osvp.found);
    EXPECT_NEAR(osvp.objective, brute.objective, 1e-9);
  }
}

// ------------------------------------------------------- search mechanics

TEST(SearchMechanics, SolutionCoversEveryProcessOnce) {
  Problem p = random_serial_problem(14, 2, 5);
  auto r = solve_oastar(p);
  expect_valid(p, r);
  EXPECT_EQ(static_cast<std::int32_t>(r.solution.machines.size()),
            p.machine_count());
}

TEST(SearchMechanics, MachinesAreLevelOrdered) {
  Problem p = random_serial_problem(12, 4, 6);
  auto r = solve_oastar(p);
  ASSERT_TRUE(r.found);
  // Canonicalized: machine k's first process is the smallest id not in
  // machines 0..k-1 (valid-path level structure).
  std::vector<bool> seen(static_cast<std::size_t>(p.n()), false);
  for (const auto& m : r.solution.machines) {
    std::int32_t expected_lead = 0;
    while (seen[static_cast<std::size_t>(expected_lead)]) ++expected_lead;
    EXPECT_EQ(m.front(), expected_lead);
    for (ProcessId q : m) seen[static_cast<std::size_t>(q)] = true;
  }
}

TEST(SearchMechanics, ExpansionLimitReportsTimeout) {
  Problem p = random_serial_problem(16, 4, 7);
  SearchOptions opt;
  opt.max_expansions = 2;
  auto r = solve_oastar(p, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.found);
}

TEST(SearchMechanics, SingleMachineBatch) {
  Problem p = random_serial_problem(4, 4, 8);
  auto r = solve_oastar(p);
  expect_valid(p, r);
  EXPECT_EQ(r.solution.machines.size(), 1u);
  EXPECT_EQ(r.solution.machines[0], (std::vector<ProcessId>{0, 1, 2, 3}));
}

TEST(SearchMechanics, DeterministicAcrossRuns) {
  Problem p = random_serial_problem(12, 4, 9);
  auto a = solve_oastar(p);
  auto b = solve_oastar(p);
  ASSERT_TRUE(a.found && b.found);
  EXPECT_EQ(a.solution.machines, b.solution.machines);
  EXPECT_EQ(a.stats.visited_paths, b.stats.visited_paths);
}

TEST(SearchMechanics, ObjectiveConsistentAcrossAggregations) {
  // OA*-SE on a parallel mix: path distance equals the SumAllProcesses
  // evaluation of its own solution.
  Problem p = random_pe_problem(4, {3}, 2, 13);
  SearchOptions opt;
  opt.aggregation = Aggregation::SumAllProcesses;
  auto r = solve_oastar(p, opt);
  ASSERT_TRUE(r.found);
  auto ev = evaluate_solution(p, r.solution, *p.full_model,
                              Aggregation::SumAllProcesses);
  EXPECT_NEAR(ev.total, r.objective, 1e-9);
}

TEST(SearchMechanics, PeAwareObjectiveNoWorseThanSeSchedule) {
  // Scheduling with the correct Eq. 13 objective cannot lose to OA*-SE when
  // both are judged under Eq. 13 (the Fig. 6 comparison).
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    Problem p = random_pe_problem(6, {5}, 4, seed);
    SearchOptions se;
    se.aggregation = Aggregation::SumAllProcesses;
    auto r_se = solve_oastar(p, se);
    SearchOptions pe;
    pe.dismiss = DismissPolicy::ParetoDominance;
    auto r_pe = solve_oastar(p, pe);
    ASSERT_TRUE(r_se.found && r_pe.found);
    Real se_under_eq13 = evaluate_solution(p, r_se.solution).total;
    Real pe_under_eq13 = evaluate_solution(p, r_pe.solution).total;
    EXPECT_LE(pe_under_eq13, se_under_eq13 + 1e-9) << "seed " << seed;
  }
}

TEST(SearchMechanics, CommAwareObjectiveNoWorseThanCommBlind) {
  // OA*-PC vs OA*-PE judged under the full Eq. 9 objective (Fig. 7).
  for (std::uint64_t seed : {51u, 52u}) {
    Problem p = random_pc_problem(4, {4}, 4, seed);
    SearchOptions pe;
    pe.use_comm_model = false;
    pe.dismiss = DismissPolicy::ParetoDominance;
    auto r_pe = solve_oastar(p, pe);
    SearchOptions pc;
    pc.dismiss = DismissPolicy::ParetoDominance;
    auto r_pc = solve_oastar(p, pc);
    ASSERT_TRUE(r_pe.found && r_pc.found);
    Real pe_obj = evaluate_solution(p, r_pe.solution).total;
    Real pc_obj = evaluate_solution(p, r_pc.solution).total;
    EXPECT_LE(pc_obj, pe_obj + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cosched
