// Tests for the experiment harness utilities and level statistics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "astar/search.hpp"
#include "graph/level_stats.hpp"
#include "harness/experiment.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_serial_problem;

// ------------------------------------------------------------- ArgParser

TEST(ArgParser, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--jobs", "24", "--scale=2.5", "--flag"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("jobs", 0), 24);
  EXPECT_DOUBLE_EQ(args.get_real("scale", 0.0), 2.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
}

TEST(ArgParser, FlagFollowedByFlagHasEmptyValue) {
  const char* argv[] = {"prog", "--a", "--b", "x"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get_string("a", "none"), "");
  EXPECT_EQ(args.get_string("b", "none"), "x");
}

TEST(WriteCsv, RoundTripsTableContents) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::string dir = std::filesystem::temp_directory_path() /
                    "cosched_csv_test";
  std::string path = write_csv(dir, "unit", t);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ LevelStats

TEST(LevelStats, ExactMinimaMatchBruteEnumeration) {
  Problem p = random_serial_problem(10, 2, 7);
  NodeEvaluator eval(p, *p.full_model);
  LevelStats stats = LevelStats::build_exact(eval, HWeightMode::Admissible);
  EXPECT_TRUE(stats.exact());
  EXPECT_EQ(stats.total_nodes(), 45u);  // C(10,2)

  // Check level 3 by hand: nodes {3,k} for k in 4..9.
  Real min_w = kInfinity;
  for (ProcessId k = 4; k < 10; ++k) {
    std::vector<ProcessId> node{3, k};
    min_w = std::min(min_w, eval.weight(node));
  }
  EXPECT_NEAR(stats.min_level_weight(3), min_w, 1e-12);
}

TEST(LevelStats, Strategy1SumsGloballyCheapestBeyondLevel) {
  Problem p = random_serial_problem(8, 2, 8);
  NodeEvaluator eval(p, *p.full_model);
  LevelStats stats = LevelStats::build_exact(eval, HWeightMode::Admissible);
  // k = 0 -> 0; monotone in k; taking from later levels only can't be
  // cheaper than from all levels.
  EXPECT_DOUBLE_EQ(stats.strategy1_h(-1, 0), 0.0);
  Real h1 = stats.strategy1_h(-1, 1);
  Real h2 = stats.strategy1_h(-1, 2);
  EXPECT_GE(h2, h1);
  EXPECT_GE(stats.strategy1_h(3, 1), 0.0);
  EXPECT_GE(stats.strategy1_h(3, 1) + 1e-12, 0.0);
  // Restricting to levels > 3 cannot find cheaper nodes than levels > -1.
  EXPECT_GE(stats.strategy1_h(3, 2) + 1e-12, stats.strategy1_h(-1, 2) - 1e-9);
}

TEST(LevelStats, Strategy2TakesKSmallestUnscheduledMinima) {
  Problem p = random_serial_problem(8, 2, 9);
  NodeEvaluator eval(p, *p.full_model);
  LevelStats stats = LevelStats::build_exact(eval, HWeightMode::Admissible);
  std::vector<ProcessId> unscheduled{0, 1, 2, 3, 4, 5, 6, 7};
  Real h_all4 = stats.strategy2_h(unscheduled, 4);
  // Sum of the 4 smallest minima over levels 0..6 (7 can't lead: 7+2>8).
  std::vector<Real> minima;
  for (ProcessId lead = 0; lead + 2 <= 8; ++lead)
    minima.push_back(stats.min_level_weight(lead));
  std::sort(minima.begin(), minima.end());
  Real expected = minima[0] + minima[1] + minima[2] + minima[3];
  EXPECT_NEAR(h_all4, expected, 1e-12);
  EXPECT_DOUBLE_EQ(stats.strategy2_h(unscheduled, 0), 0.0);
}

TEST(LevelStats, ApproxBuildProvidesFiniteEstimates) {
  Problem p = random_serial_problem(40, 4, 10);
  NodeEvaluator eval(p, *p.full_model);
  LevelStats stats = LevelStats::build_approx(eval, HWeightMode::Admissible);
  EXPECT_FALSE(stats.exact());
  for (ProcessId lead = 0; lead + 4 <= 40; ++lead) {
    Real w = stats.min_level_weight(lead);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kInfinity);
  }
}

TEST(LevelStats, ExactBuildRefusesOversizedGraphs) {
  Problem p = random_serial_problem(40, 4, 11);
  NodeEvaluator eval(p, *p.full_model);
  EXPECT_THROW(
      LevelStats::build_exact(eval, HWeightMode::Admissible, /*max=*/1000),
      ContractViolation);
}

// ----------------------------------------------------------- beam search

TEST(BeamSearch, ExplicitBeamWidthMatchesValidity) {
  Problem p = random_serial_problem(32, 4, 12);
  SearchOptions opt;
  opt.heuristic_search = true;
  opt.beam_width = 4;
  auto r = CoScheduleSearch(p, opt).run();
  ASSERT_TRUE(r.found);
  validate_solution(p, r.solution);
  auto ev = evaluate_solution(p, r.solution);
  EXPECT_NEAR(ev.total, r.objective, 1e-9);
}

TEST(BeamSearch, WiderBeamIsNoWorse) {
  Problem p = random_serial_problem(48, 4, 13);
  SearchOptions narrow;
  narrow.heuristic_search = true;
  narrow.beam_width = 1;
  SearchOptions wide;
  wide.heuristic_search = true;
  wide.beam_width = 24;
  auto r_narrow = CoScheduleSearch(p, narrow).run();
  auto r_wide = CoScheduleSearch(p, wide).run();
  ASSERT_TRUE(r_narrow.found && r_wide.found);
  EXPECT_LE(r_wide.objective, r_narrow.objective + 1e-9);
}

TEST(BeamSearch, DeterministicAcrossRuns) {
  Problem p = random_serial_problem(60, 4, 14);
  SearchOptions opt;
  opt.heuristic_search = true;
  opt.beam_width = 8;
  auto a = CoScheduleSearch(p, opt).run();
  auto b = CoScheduleSearch(p, opt).run();
  ASSERT_TRUE(a.found && b.found);
  EXPECT_EQ(a.solution.machines, b.solution.machines);
}

TEST(BeamSearch, TimeLimitReportsTimeout) {
  Problem p = random_serial_problem(240, 4, 15);
  SearchOptions opt;
  opt.heuristic_search = true;
  opt.max_stats_nodes = 1000;      // force beam
  opt.time_limit_seconds = 1e-9;   // immediate
  auto r = CoScheduleSearch(p, opt).run();
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.found);
}

}  // namespace
}  // namespace cosched
