// Tests for communication-aware process condensation (paper Section III-E).
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "comm/decomposition.hpp"
#include "graph/condensation.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pc_problem;
using testhelpers::random_pe_problem;

// ---------------------------------------------------------------- the key

class Fig2Keys : public ::testing::Test {
 protected:
  void SetUp() override {
    // Paper Fig. 2 / Fig. 4: 9-process 2D PC job + 1 serial job, dual-core.
    batch_.add_job("par", JobKind::ParallelComm, 9);
    batch_.add_job("ser", JobKind::Serial, 1);
    topo_ = std::make_shared<CommTopology>();
    topo_->attach(0, 0, make_2d_pattern(3, 3, 100.0, 100.0));
  }
  JobBatch batch_;
  std::shared_ptr<CommTopology> topo_;
};

TEST_F(Fig2Keys, CondensableNodesOfFig4ShareKeys) {
  // Fig. 4 condenses <1,7> and <1,9> with <1,3> (globals {0,2},{0,6},{0,8}).
  std::vector<ProcessId> n13{0, 2}, n17{0, 6}, n19{0, 8};
  auto k13 = condensation_key(n13, batch_, topo_.get());
  auto k17 = condensation_key(n17, batch_, topo_.get());
  auto k19 = condensation_key(n19, batch_, topo_.get());
  EXPECT_EQ(k13, k17);
  EXPECT_EQ(k13, k19);
}

TEST_F(Fig2Keys, DistinctPropertiesYieldDistinctKeys) {
  // <1,2> has property (1,2); <1,5> (center pairing) has (2,3): different.
  std::vector<ProcessId> n12{0, 1}, n15{0, 4};
  EXPECT_NE(condensation_key(n12, batch_, topo_.get()),
            condensation_key(n15, batch_, topo_.get()));
}

TEST_F(Fig2Keys, SerialProcessesAreNeverInterchangeable) {
  // {parallel0, serial} vs {parallel0, parallel1}: different member kinds.
  std::vector<ProcessId> with_serial{0, 9}, all_parallel{0, 1};
  EXPECT_NE(condensation_key(with_serial, batch_, topo_.get()),
            condensation_key(all_parallel, batch_, topo_.get()));
}

TEST(CondensationKey, PeProcessesOfSameJobInterchange) {
  JobBatch batch;
  batch.add_job("pe", JobKind::ParallelNoComm, 4);
  batch.add_job("s", JobKind::Serial, 1);
  std::vector<ProcessId> a{0, 4}, b{1, 4}, c{2, 4};
  EXPECT_EQ(condensation_key(a, batch, nullptr),
            condensation_key(b, batch, nullptr));
  EXPECT_EQ(condensation_key(a, batch, nullptr),
            condensation_key(c, batch, nullptr));
}

TEST(CondensationKey, DifferentParallelJobsDiffer) {
  JobBatch batch;
  batch.add_job("pe1", JobKind::ParallelNoComm, 2);
  batch.add_job("pe2", JobKind::ParallelNoComm, 2);
  std::vector<ProcessId> a{0, 1}, b{2, 3}, mixed{0, 2};
  EXPECT_NE(condensation_key(a, batch, nullptr),
            condensation_key(b, batch, nullptr));
  EXPECT_NE(condensation_key(a, batch, nullptr),
            condensation_key(mixed, batch, nullptr));
}

// -------------------------------------------- condensation inside the search

TEST(CondensationSearch, PreservesTheOptimumOnPeMixes) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Problem p = random_pe_problem(4, {4}, 2, seed);
    SearchOptions with_c;
    with_c.condense = true;
    with_c.dismiss = DismissPolicy::ParetoDominance;
    SearchOptions without_c;
    without_c.condense = false;
    without_c.dismiss = DismissPolicy::ParetoDominance;
    auto r1 = solve_oastar(p, with_c);
    auto r2 = solve_oastar(p, without_c);
    ASSERT_TRUE(r1.found && r2.found);
    EXPECT_NEAR(r1.objective, r2.objective, 1e-9) << "seed " << seed;
  }
}

TEST(CondensationSearch, PreservesTheOptimumOnPcMixes) {
  for (std::uint64_t seed : {4u, 5u}) {
    Problem p = random_pc_problem(2, {4}, 2, seed);
    SearchOptions with_c;
    with_c.condense = true;
    with_c.dismiss = DismissPolicy::ParetoDominance;
    SearchOptions without_c;
    without_c.condense = false;
    without_c.dismiss = DismissPolicy::ParetoDominance;
    auto r1 = solve_oastar(p, with_c);
    auto r2 = solve_oastar(p, without_c);
    ASSERT_TRUE(r1.found && r2.found);
    EXPECT_NEAR(r1.objective, r2.objective, 1e-9) << "seed " << seed;
  }
}

TEST(CondensationSearch, ReducesGeneratedPaths) {
  // A PE job with many symmetric processes: condensation must prune.
  Problem p = random_pe_problem(2, {6}, 2, 6);
  SearchOptions with_c;
  with_c.condense = true;
  SearchOptions without_c;
  without_c.condense = false;
  auto r1 = solve_oastar(p, with_c);
  auto r2 = solve_oastar(p, without_c);
  ASSERT_TRUE(r1.found && r2.found);
  EXPECT_GT(r1.stats.condensed_skips, 0u);
  EXPECT_LT(r1.stats.generated, r2.stats.generated);
}

TEST(CondensationSearch, NoOpForSerialOnlyBatches) {
  Problem p = testhelpers::random_serial_problem(8, 2, 7);
  SearchOptions opt;
  opt.condense = true;
  auto r = solve_oastar(p, opt);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stats.condensed_skips, 0u);
}

}  // namespace
}  // namespace cosched
