// AlertEngine: rule-file validation, the inactive → pending → firing →
// resolved state machine, burn-rate semantics and the render surfaces.
// Everything runs on tick(exposition, now) with a synthetic clock.
#include <gtest/gtest.h>

#include <string>

#include "obs/alerts.hpp"
#include "obs/metrics_registry.hpp"
#include "online/journal.hpp"

namespace cosched {
namespace {

// ---- rule files ------------------------------------------------------------

TEST(AlertRules, ParsesThresholdAndBurnRate) {
  const std::string text = R"({
    "_note": "comments-by-convention are ignored",
    "rules": [
      {"name": "deep_queue", "kind": "threshold", "severity": "warn",
       "metric": "cosched_depth", "agg": "avg", "window_seconds": 30,
       "op": ">", "threshold": 32, "for_seconds": 2},
      {"name": "latency_burn", "kind": "burn_rate", "severity": "critical",
       "histogram": "cosched_lat_seconds", "budget_ms": 100,
       "objective": 0.9, "fast_window_seconds": 5, "slow_window_seconds": 30,
       "burn_factor": 4}
    ]
  })";
  AlertRuleSet rules;
  std::string error;
  ASSERT_TRUE(parse_alert_rules(text, rules, error)) << error;
  ASSERT_EQ(rules.rules.size(), 2u);
  EXPECT_EQ(rules.rules[0].name, "deep_queue");
  EXPECT_EQ(rules.rules[0].kind, AlertRule::Kind::Threshold);
  EXPECT_EQ(rules.rules[0].agg, AlertAgg::Avg);
  EXPECT_DOUBLE_EQ(rules.rules[0].threshold, 32.0);
  EXPECT_DOUBLE_EQ(rules.rules[0].for_seconds, 2.0);
  EXPECT_EQ(rules.rules[1].kind, AlertRule::Kind::BurnRate);
  EXPECT_EQ(rules.rules[1].severity, AlertSeverity::Critical);
  EXPECT_DOUBLE_EQ(rules.rules[1].budget_ms, 100.0);
  EXPECT_DOUBLE_EQ(rules.rules[1].burn_factor, 4.0);
}

TEST(AlertRules, FieldErrorsNameTheField) {
  AlertRuleSet rules;
  std::string error;

  EXPECT_FALSE(parse_alert_rules(R"({"wat": 1})", rules, error));
  EXPECT_NE(error.find("unknown top-level key 'wat'"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "metric": "m", "threshold": 1,
                     "theshold": 2}]})",
      rules, error));
  EXPECT_NE(error.find("unknown rule field 'theshold'"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"metric": "m", "threshold": 1}]})", rules, error));
  EXPECT_NE(error.find("rules.0.name"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "kind": "sideways"}]})", rules, error));
  EXPECT_NE(error.find("rules.0.kind"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "severity": "mild", "metric": "m",
                     "threshold": 1}]})",
      rules, error));
  EXPECT_NE(error.find("rules.0.severity"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(R"({"rules": [{"name": "a"}]})", rules,
                                 error));
  EXPECT_NE(error.find("rules.0.metric"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "metric": "m"}]})", rules, error));
  EXPECT_NE(error.find("rules.0.threshold"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "metric": "m", "threshold": 1,
                     "op": ">="}]})",
      rules, error));
  EXPECT_NE(error.find("rules.0.op"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "kind": "burn_rate",
                     "histogram": "h", "objective": 1.5}]})",
      rules, error));
  EXPECT_NE(error.find("rules.0.objective"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [{"name": "a", "kind": "burn_rate", "histogram": "h",
                     "fast_window_seconds": 60,
                     "slow_window_seconds": 10}]})",
      rules, error));
  EXPECT_NE(error.find("rules.0.slow_window_seconds"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(
      R"({"rules": [
        {"name": "a", "metric": "m", "threshold": 1},
        {"name": "a", "metric": "m", "threshold": 2}]})",
      rules, error));
  EXPECT_NE(error.find("duplicate rule name 'a'"), std::string::npos);

  EXPECT_FALSE(parse_alert_rules(R"({"_note": "nothing"})", rules, error));
  EXPECT_NE(error.find("no rules found"), std::string::npos);
}

TEST(AlertRules, DefaultsGuardTheRpcLatencyHistogram) {
  AlertRuleSet rules = default_alert_rules(250.0);
  ASSERT_EQ(rules.rules.size(), 2u);
  for (const AlertRule& rule : rules.rules) {
    EXPECT_EQ(rule.kind, AlertRule::Kind::BurnRate);
    EXPECT_EQ(rule.histogram, "cosched_rpc_request_seconds");
    EXPECT_DOUBLE_EQ(rule.budget_ms, 250.0);
  }
  EXPECT_NE(rules.rules[0].name, rules.rules[1].name);
}

// ---- state machine ---------------------------------------------------------

AlertEngineOptions threshold_options() {
  AlertEngineOptions options;
  AlertRule rule;
  rule.name = "deep_queue";
  rule.kind = AlertRule::Kind::Threshold;
  rule.severity = AlertSeverity::Critical;
  rule.metric = "cosched_depth";
  rule.agg = AlertAgg::Latest;
  rule.above = true;
  rule.threshold = 5.0;
  rule.for_seconds = 2.0;
  rule.clear_seconds = 2.0;
  rule.resolved_hold_seconds = 5.0;
  options.rules.rules.push_back(rule);
  return options;
}

std::string depth(double value) {
  return "cosched_depth " + format_prometheus_value(value) + "\n";
}

TEST(AlertEngine, FullThresholdLifecycle) {
  AlertEngine engine(threshold_options());
  DecisionJournal journal;
  engine.set_journal(&journal);

  auto state = [&] { return engine.views().at(0).state; };

  ASSERT_TRUE(engine.tick(depth(1.0), 0.0));
  EXPECT_EQ(state(), AlertState::Inactive);

  ASSERT_TRUE(engine.tick(depth(10.0), 1.0));
  EXPECT_EQ(state(), AlertState::Pending);
  ASSERT_TRUE(engine.tick(depth(10.0), 2.0));
  EXPECT_EQ(state(), AlertState::Pending);  // held 1 s of the 2 s for-window

  ASSERT_TRUE(engine.tick(depth(10.0), 3.0));
  EXPECT_EQ(state(), AlertState::Firing);
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_EQ(engine.fired_total(), 1u);
  ASSERT_EQ(engine.firing_rules().size(), 1u);
  EXPECT_EQ(engine.firing_rules()[0], "deep_queue");

  // A blip below threshold must clear for clear_seconds before resolving.
  ASSERT_TRUE(engine.tick(depth(1.0), 4.0));
  EXPECT_EQ(state(), AlertState::Firing);
  ASSERT_TRUE(engine.tick(depth(10.0), 5.0));  // re-breach cancels the clear
  EXPECT_EQ(state(), AlertState::Firing);
  ASSERT_TRUE(engine.tick(depth(1.0), 6.0));
  ASSERT_TRUE(engine.tick(depth(1.0), 7.0));
  EXPECT_EQ(state(), AlertState::Firing);  // clear held only 1 s
  ASSERT_TRUE(engine.tick(depth(1.0), 8.0));
  EXPECT_EQ(state(), AlertState::Resolved);
  EXPECT_EQ(engine.firing_count(), 0u);

  // Resolved rests resolved_hold_seconds, then returns to inactive.
  ASSERT_TRUE(engine.tick(depth(1.0), 12.0));
  EXPECT_EQ(state(), AlertState::Resolved);
  ASSERT_TRUE(engine.tick(depth(1.0), 13.0));
  EXPECT_EQ(state(), AlertState::Inactive);

  // Every transition was journalled as a fleet-level Alert event:
  // pending, firing, resolved, inactive.
  EXPECT_EQ(journal.events_total(JournalEventKind::Alert), 4u);
  std::vector<JournalEvent> events = journal.tail(16);
  ASSERT_EQ(events.size(), 4u);
  for (const JournalEvent& event : events) {
    EXPECT_EQ(event.kind, JournalEventKind::Alert);
    EXPECT_EQ(event.job_id, -1);
    EXPECT_EQ(event.policy, "deep_queue");
    EXPECT_NE(event.trace_id, 0u);
  }
  EXPECT_NE(events[1].detail.find("state=firing"), std::string::npos);

  std::map<std::string, std::uint64_t> counts = engine.transition_counts();
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  EXPECT_EQ(total, 4u);
}

TEST(AlertEngine, PendingFallsBackWithoutFiring) {
  AlertEngine engine(threshold_options());
  ASSERT_TRUE(engine.tick(depth(10.0), 0.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Pending);
  ASSERT_TRUE(engine.tick(depth(1.0), 1.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
  EXPECT_EQ(engine.fired_total(), 0u);
}

TEST(AlertEngine, NoDataNeverFires) {
  AlertEngine engine(threshold_options());
  ASSERT_TRUE(engine.tick("cosched_other 1\n", 0.0));
  ASSERT_TRUE(engine.tick("cosched_other 1\n", 1.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
}

TEST(AlertEngine, ZeroForSecondsFiresImmediately) {
  AlertEngineOptions options = threshold_options();
  options.rules.rules[0].for_seconds = 0.0;
  AlertEngine engine(options);
  ASSERT_TRUE(engine.tick(depth(10.0), 0.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Firing);
  EXPECT_EQ(engine.fired_total(), 1u);
}

// ---- burn-rate rules -------------------------------------------------------

std::string latency_scrape(double good, double all) {
  std::string text;
  text += "cosched_lat_seconds_bucket{le=\"0.1\"} " +
          format_prometheus_value(good) + "\n";
  text += "cosched_lat_seconds_bucket{le=\"+Inf\"} " +
          format_prometheus_value(all) + "\n";
  return text;
}

TEST(AlertEngine, BurnRateFiresOnBothWindowsAndResolvesWhenTrafficDrains) {
  AlertEngineOptions options;
  AlertRule rule;
  rule.name = "latency_burn";
  rule.kind = AlertRule::Kind::BurnRate;
  rule.histogram = "cosched_lat_seconds";
  rule.budget_ms = 100.0;  // good = faster than 0.1 s
  rule.objective = 0.9;    // error budget 0.1
  rule.fast_window_seconds = 2.0;
  rule.slow_window_seconds = 4.0;
  rule.burn_factor = 2.0;
  rule.for_seconds = 0.0;
  rule.clear_seconds = 1.0;
  rule.resolved_hold_seconds = 2.0;
  options.rules.rules.push_back(rule);
  AlertEngine engine(options);

  // Every sample blows the budget: bad_fraction 1.0, burn 10 > factor 2.
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 0.0), 0.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 10.0), 1.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Firing);
  EXPECT_NE(engine.views().at(0).detail.find("fast_burn=10"),
            std::string::npos);

  // Traffic stops: zero windowed delta is "no evidence", which both keeps
  // the rule from firing on silence and lets a firing rule resolve. At
  // t=2 the fast window still reaches the t=0 baseline, so the burn only
  // clears at t=3 and the clear must then hold clear_seconds.
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 10.0), 2.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Firing);
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 10.0), 3.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Firing);
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 10.0), 4.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Resolved);
  ASSERT_TRUE(engine.tick(latency_scrape(0.0, 10.0), 6.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
}

TEST(AlertEngine, BurnRateNeedsBothWindowsHot) {
  AlertEngineOptions options;
  AlertRule rule;
  rule.name = "latency_burn";
  rule.kind = AlertRule::Kind::BurnRate;
  rule.histogram = "cosched_lat_seconds";
  rule.budget_ms = 100.0;
  rule.objective = 0.9;
  rule.fast_window_seconds = 2.0;
  rule.slow_window_seconds = 20.0;
  rule.burn_factor = 2.0;
  rule.for_seconds = 0.0;
  options.rules.rules.push_back(rule);
  AlertEngine engine(options);

  // A long healthy history, then a 1-second bad burst: the fast window
  // burns hot but the slow window stays diluted below the factor.
  double good = 0.0;
  for (int t = 0; t <= 18; ++t) {
    good += 100.0;
    ASSERT_TRUE(engine.tick(latency_scrape(good, good), t));
    ASSERT_EQ(engine.views().at(0).state, AlertState::Inactive);
  }
  ASSERT_TRUE(engine.tick(latency_scrape(good, good + 100.0), 19.0));
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
}

// ---- render surfaces -------------------------------------------------------

TEST(AlertRender, TextAndJson) {
  std::vector<AlertView> views;
  AlertView firing;
  firing.rule = "deep_queue";
  firing.state = AlertState::Firing;
  firing.severity = AlertSeverity::Critical;
  firing.value = 12.0;
  firing.threshold = 5.0;
  firing.since_seconds = 3.0;
  firing.detail = "agg=latest";
  views.push_back(firing);
  AlertView shard;
  shard.shard_id = 2;
  shard.rule = "latency_burn";
  shard.state = AlertState::Inactive;
  views.push_back(shard);

  std::string text = render_alerts_text(views, true);
  EXPECT_NE(text.find("alerts: 2 rules, 1 firing"), std::string::npos);
  EXPECT_NE(text.find("rule=deep_queue state=firing severity=critical"),
            std::string::npos);
  EXPECT_NE(text.find("rule=latency_burn shard=2 state=inactive"),
            std::string::npos);
  EXPECT_EQ(render_alerts_text({}, false), "alerts disabled\n");

  std::string json = render_alerts_json(views, true);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"firing\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"deep_queue\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
}

TEST(AlertRender, EngineMetricsFamilies) {
  AlertEngineOptions options = threshold_options();
  options.rules.rules[0].for_seconds = 0.0;
  AlertEngine engine(options);
  ASSERT_TRUE(engine.tick(depth(10.0), 0.0));
  std::string text = render_alert_metrics(engine);
  EXPECT_NE(text.find("cosched_alerts_firing 1"), std::string::npos);
  EXPECT_NE(text.find("cosched_alert_transitions_total{rule=\"deep_queue\","
                      "state=\"firing\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cosched_tsdb_series"), std::string::npos);
  std::vector<PrometheusSample> samples;
  EXPECT_TRUE(parse_prometheus_text(text, samples));
}

TEST(AlertState, EnumRoundTrips) {
  for (std::uint8_t raw = 0; raw < kAlertStates; ++raw) {
    AlertState state;
    ASSERT_TRUE(alert_state_from(raw, state));
    EXPECT_EQ(static_cast<std::uint8_t>(state), raw);
  }
  AlertState state;
  EXPECT_FALSE(alert_state_from(kAlertStates, state));
  AlertSeverity severity;
  EXPECT_TRUE(parse_alert_severity("critical", severity));
  EXPECT_FALSE(parse_alert_severity("spicy", severity));
  AlertAgg agg;
  EXPECT_TRUE(parse_alert_agg("p95", agg));
  EXPECT_FALSE(parse_alert_agg("median", agg));
}

}  // namespace
}  // namespace cosched
