// Unit tests for src/core: degradation models, objective evaluation, node
// evaluation, problem builders.
#include <gtest/gtest.h>

#include "core/builders.hpp"
#include "core/degradation_models.hpp"
#include "core/node_eval.hpp"
#include "core/objective.hpp"

namespace cosched {
namespace {

// --------------------------------------------------------- TabularModel

TEST(TabularModel, LookupIgnoresCoRunnerOrder) {
  TabularDegradationModel m(4);
  m.set(0, {1, 2}, 0.5);
  ProcessId ab[2] = {1, 2}, ba[2] = {2, 1};
  EXPECT_DOUBLE_EQ(m.degradation(0, ab), 0.5);
  EXPECT_DOUBLE_EQ(m.degradation(0, ba), 0.5);
  ProcessId other[2] = {1, 3};
  EXPECT_DOUBLE_EQ(m.degradation(0, other), 0.0);  // unset -> 0
}

TEST(TabularModel, NegativeDegradationRejected) {
  TabularDegradationModel m(2);
  EXPECT_THROW(m.set(0, {1}, -0.1), ContractViolation);
}

// --------------------------------------------------------- SyntheticModel

TEST(SyntheticModel, MonotoneInCoRunnerPressure) {
  SyntheticDegradationModel m({0.5, 0.2, 0.7, 0.3});
  ProcessId low[1] = {1};   // pressure 0.2
  ProcessId high[1] = {2};  // pressure 0.7
  EXPECT_LT(m.degradation(0, low), m.degradation(0, high));
  ProcessId both[2] = {1, 2};
  EXPECT_GT(m.degradation(0, both), m.degradation(0, high));
}

TEST(SyntheticModel, InertProcessSuffersAndInflictsNothing) {
  SyntheticDegradationModel m({0.5, 0.0});
  ProcessId co0[1] = {0};
  EXPECT_DOUBLE_EQ(m.degradation(1, co0), 0.0);  // imaginary suffers nothing
  ProcessId co1[1] = {1};
  EXPECT_DOUBLE_EQ(m.degradation(0, co1), 0.0);  // and inflicts nothing
}

TEST(SyntheticModel, SensitiveProcessSuffersMore) {
  // Same co-runners, higher own rate -> higher degradation.
  SyntheticDegradationModel m({0.2, 0.7, 0.5});
  ProcessId co[1] = {2};
  EXPECT_LT(m.degradation(0, co), m.degradation(1, co));
}

TEST(SyntheticModel, RandomFactoryRespectsRange) {
  Rng rng(3);
  auto m = SyntheticDegradationModel::random(100, rng, 0.15, 0.75);
  for (ProcessId p = 0; p < 100; ++p) {
    EXPECT_GE(m->miss_rate(p), 0.15);
    EXPECT_LT(m->miss_rate(p), 0.75);
    EXPECT_DOUBLE_EQ(m->pressure(p), m->miss_rate(p));
  }
}

TEST(SyntheticModel, DegradationBounded) {
  SyntheticDegradationModel m({0.75, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75});
  ProcessId co[7] = {1, 2, 3, 4, 5, 6, 7};
  Real d = m.degradation(0, co);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

// --------------------------------------------------------------- SdcModel

SdcDegradationModel::ProcessProgram make_program(Real reuse, Real misses) {
  SdcDegradationModel::ProcessProgram p;
  std::vector<Real> hits(16, reuse);
  p.sdp = StackDistanceProfile(hits, misses);
  p.timing.base_cycles = 100000.0;
  p.timing.solo_misses = misses;
  p.solo_time_seconds = 1e-3;
  p.solo_miss_rate = misses / (misses + 16 * reuse);
  return p;
}

TEST(SdcModel, SoloDegradationIsZero) {
  std::vector<SdcDegradationModel::ProcessProgram> progs;
  progs.push_back(make_program(100, 50));
  progs.push_back(SdcDegradationModel::ProcessProgram{});  // inert
  SdcDegradationModel m(quad_core_machine(), std::move(progs));
  ProcessId co[1] = {1};  // only an imaginary co-runner
  EXPECT_DOUBLE_EQ(m.degradation(0, co), 0.0);
}

TEST(SdcModel, ContentionIncreasesWithCoRunners) {
  std::vector<SdcDegradationModel::ProcessProgram> progs;
  for (int i = 0; i < 4; ++i) progs.push_back(make_program(100, 50));
  SdcDegradationModel m(quad_core_machine(), std::move(progs));
  ProcessId one[1] = {1};
  ProcessId three[3] = {1, 2, 3};
  EXPECT_GE(m.degradation(0, three), m.degradation(0, one));
  EXPECT_GT(m.degradation(0, three), 0.0);
}

TEST(SdcModel, MemoizationConsistency) {
  std::vector<SdcDegradationModel::ProcessProgram> progs;
  for (int i = 0; i < 3; ++i) progs.push_back(make_program(50 + 20 * i, 30));
  SdcDegradationModel m(quad_core_machine(), std::move(progs));
  ProcessId co[2] = {1, 2};
  Real first = m.degradation(0, co);
  ProcessId co_rev[2] = {2, 1};
  EXPECT_DOUBLE_EQ(m.degradation(0, co_rev), first);  // memo + order-free
}

// --------------------------------------------------------- CommAware model

TEST(CommAwareModel, AddsCommTermPerEq9) {
  auto base = std::make_shared<SyntheticDegradationModel>(
      std::vector<Real>{0.5, 0.5, 0.5});
  auto topo = std::make_shared<CommTopology>();
  topo->attach(0, 0, make_1d_pattern(2, 50.0));  // processes 0,1 linked
  CommAwareDegradationModel m(base, topo, /*bandwidth=*/100.0);

  ProcessId co_local[1] = {1};
  ProcessId co_remote[1] = {2};
  Real with_peer = m.degradation(0, co_local);
  Real without_peer = m.degradation(0, co_remote);
  // Separated from its neighbour, process 0 pays 50/100 = 0.5s over
  // solo_time 1.0 -> +0.5 degradation.
  EXPECT_NEAR(without_peer - base->degradation(0, co_remote), 0.5, 1e-12);
  // Co-located with the neighbour, no comm penalty.
  EXPECT_DOUBLE_EQ(with_peer, base->degradation(0, co_local));
}

// ------------------------------------------------------- objective / eval

Problem tiny_problem(std::vector<Real> rates, std::uint32_t cores) {
  Problem p;
  p.machine = machine_by_cores(cores);
  for (std::size_t i = 0; i < rates.size(); ++i)
    p.batch.add_job("j" + std::to_string(i), JobKind::Serial, 1);
  p.batch.pad_to_multiple(static_cast<std::int32_t>(cores));
  while (rates.size() < static_cast<std::size_t>(p.batch.process_count()))
    rates.push_back(0.0);
  auto m = std::make_shared<SyntheticDegradationModel>(std::move(rates));
  p.contention_model = m;
  p.full_model = m;
  return p;
}

TEST(Objective, ValidateRejectsBadSolutions) {
  Problem p = tiny_problem({0.3, 0.4, 0.5, 0.6}, 2);
  Solution wrong_count;
  wrong_count.machines = {{0, 1}};
  EXPECT_THROW(validate_solution(p, wrong_count), ContractViolation);
  Solution duplicate;
  duplicate.machines = {{0, 1}, {1, 2}};
  EXPECT_THROW(validate_solution(p, duplicate), ContractViolation);
  Solution ok;
  ok.machines = {{0, 1}, {2, 3}};
  EXPECT_NO_THROW(validate_solution(p, ok));
}

TEST(Objective, SerialObjectiveSumsAllProcesses) {
  Problem p = tiny_problem({0.3, 0.4, 0.5, 0.6}, 2);
  Solution s;
  s.machines = {{0, 1}, {2, 3}};
  auto ev = evaluate_solution(p, s);
  Real expected = 0.0;
  ProcessId co01[1] = {1}, co10[1] = {0}, co23[1] = {3}, co32[1] = {2};
  expected += p.full_model->degradation(0, co01);
  expected += p.full_model->degradation(1, co10);
  expected += p.full_model->degradation(2, co23);
  expected += p.full_model->degradation(3, co32);
  EXPECT_NEAR(ev.total, expected, 1e-12);
  EXPECT_NEAR(ev.average_per_job, expected / 4.0, 1e-12);
}

TEST(Objective, ParallelJobContributesItsMax) {
  Problem p;
  p.machine = machine_by_cores(2);
  p.batch.add_job("par", JobKind::ParallelNoComm, 3);
  p.batch.add_job("ser", JobKind::Serial, 1);
  auto m = std::make_shared<SyntheticDegradationModel>(
      std::vector<Real>{0.6, 0.6, 0.6, 0.3});
  p.contention_model = m;
  p.full_model = m;

  Solution s;
  s.machines = {{0, 1}, {2, 3}};
  auto max_agg = evaluate_solution(p, s, *m, Aggregation::MaxPerParallelJob);
  auto sum_agg = evaluate_solution(p, s, *m, Aggregation::SumAllProcesses);
  // Max aggregation counts the parallel job once (its worst process), so it
  // must be strictly smaller than the straight sum here.
  EXPECT_LT(max_agg.total, sum_agg.total);
  // per_job[0] equals max over processes 0..2.
  Real expected_max = std::max({max_agg.per_process[0],
                                max_agg.per_process[1],
                                max_agg.per_process[2]});
  EXPECT_DOUBLE_EQ(max_agg.per_job[0], expected_max);
}

TEST(Objective, Figure1Example) {
  // Fig. 1 of the paper: 4 processes on two dual-core nodes. As serial jobs
  // the objective is D1+D2+D3+D4; with p1..p3 parallel it is
  // max(D1,D2,D3)+D4.
  Problem serial = tiny_problem({0.5, 0.6, 0.7, 0.4}, 2);
  Solution s;
  s.machines = {{0, 1}, {2, 3}};
  auto ev_serial = evaluate_solution(serial, s);

  Problem mixed;
  mixed.machine = machine_by_cores(2);
  mixed.batch.add_job("par", JobKind::ParallelNoComm, 3);
  mixed.batch.add_job("ser", JobKind::Serial, 1);
  auto m = std::make_shared<SyntheticDegradationModel>(
      std::vector<Real>{0.5, 0.6, 0.7, 0.4});
  mixed.contention_model = m;
  mixed.full_model = m;
  auto ev_mixed = evaluate_solution(mixed, s);

  Real d4 = ev_serial.per_process[3];
  Real dmax = std::max({ev_serial.per_process[0], ev_serial.per_process[1],
                        ev_serial.per_process[2]});
  EXPECT_NEAR(ev_mixed.total, dmax + d4, 1e-12);
  EXPECT_LT(ev_mixed.total, ev_serial.total);
}

TEST(Objective, CanonicalizeSortsMachines) {
  Solution s;
  s.machines = {{3, 2}, {1, 0}};
  s.canonicalize();
  EXPECT_EQ(s.machines[0], (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(s.machines[1], (std::vector<ProcessId>{2, 3}));
  EXPECT_EQ(s.machine_of(2), 1);
  EXPECT_EQ(s.machine_of(9), -1);
}

// ------------------------------------------------------------ NodeEvaluator

TEST(NodeEvaluator, WeightSumsMemberDegradations) {
  Problem p = tiny_problem({0.3, 0.4, 0.5, 0.6}, 4);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> node{0, 1, 2, 3};
  std::vector<Real> d;
  Real w = eval.weight(node, d);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_NEAR(w, d[0] + d[1] + d[2] + d[3], 1e-12);
  EXPECT_GT(w, 0.0);
}

TEST(NodeEvaluator, HWeightDropsParallelInAdmissibleMode) {
  Problem p;
  p.machine = machine_by_cores(2);
  p.batch.add_job("par", JobKind::ParallelNoComm, 2);
  p.batch.add_job("s0", JobKind::Serial, 1);
  p.batch.add_job("s1", JobKind::Serial, 1);
  auto m = std::make_shared<SyntheticDegradationModel>(
      std::vector<Real>{0.5, 0.5, 0.5, 0.5});
  p.contention_model = m;
  p.full_model = m;
  NodeEvaluator eval(p, *m);
  std::vector<ProcessId> mixed_node{0, 2};  // parallel + serial
  Real admissible = eval.h_weight(mixed_node, HWeightMode::Admissible);
  Real full = eval.h_weight(mixed_node, HWeightMode::PaperFull);
  EXPECT_LT(admissible, full);
  EXPECT_DOUBLE_EQ(full, eval.weight(mixed_node));
  std::vector<ProcessId> serial_node{2, 3};
  EXPECT_DOUBLE_EQ(eval.h_weight(serial_node, HWeightMode::Admissible),
                   eval.weight(serial_node));
}

// ----------------------------------------------------------------- builders

TEST(Builders, CatalogProblemShape) {
  CatalogProblemSpec spec;
  spec.cores = 4;
  spec.serial_programs = {"BT", "CG", "EP", "FT", "IS"};
  spec.parallel_jobs.push_back({"MG-Par", 2, true, 1e5});
  spec.trace_length = 20000;
  Problem p = build_catalog_problem(spec);
  EXPECT_EQ(p.n() % 4, 0);
  EXPECT_EQ(p.batch.real_process_count(), 7);
  EXPECT_EQ(p.n(), 8);  // padded by 1
  EXPECT_EQ(p.batch.parallel_job_count(), 1);
  EXPECT_NE(p.topology, nullptr);
  EXPECT_NE(p.full_model, p.contention_model);
  // The PC process pays communication when separated from its peer.
  ProcessId peer_co[3] = {6, 0, 1};   // peer process 6 co-located
  ProcessId alone_co[3] = {0, 1, 2};  // peer elsewhere
  Real with_peer = p.full_model->degradation(5, peer_co);
  Real without = p.full_model->degradation(5, alone_co);
  EXPECT_GT(without, 0.0);
  (void)with_peer;
}

TEST(Builders, CatalogProblemWithoutPcSharesModels) {
  CatalogProblemSpec spec;
  spec.cores = 2;
  spec.serial_programs = {"BT", "CG"};
  spec.trace_length = 20000;
  Problem p = build_catalog_problem(spec);
  EXPECT_EQ(p.full_model, p.contention_model);
  EXPECT_EQ(p.topology, nullptr);
}

TEST(Builders, SyntheticProblemDeterministicPerSeed) {
  SyntheticProblemSpec spec;
  spec.cores = 4;
  spec.serial_jobs = 11;
  spec.seed = 77;
  Problem a = build_synthetic_problem(spec);
  Problem b = build_synthetic_problem(spec);
  EXPECT_EQ(a.n(), 12);  // padded
  ProcessId co[3] = {1, 2, 3};
  EXPECT_DOUBLE_EQ(a.full_model->degradation(0, co),
                   b.full_model->degradation(0, co));
}

TEST(Builders, SyntheticParallelJobSharesRate) {
  SyntheticProblemSpec spec;
  spec.cores = 2;
  spec.serial_jobs = 0;
  spec.parallel_job_sizes = {4};
  Problem p = build_synthetic_problem(spec);
  auto* m = dynamic_cast<const SyntheticDegradationModel*>(
      p.contention_model.get());
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->miss_rate(0), m->miss_rate(3));
}

TEST(Builders, SyntheticPcJobGetsTopology) {
  SyntheticProblemSpec spec;
  spec.cores = 2;
  spec.serial_jobs = 2;
  spec.parallel_job_sizes = {4};
  spec.parallel_with_comm = true;
  Problem p = build_synthetic_problem(spec);
  ASSERT_NE(p.topology, nullptr);
  EXPECT_TRUE(p.topology->has_pattern(2));  // parallel job id = 2
}

}  // namespace
}  // namespace cosched
