// OTLP/HTTP JSON export: span pairing and id padding, tail-filtered trace
// export, metric kinds with histogram exemplars, endpoint parsing and the
// file sink.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/otlp.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"

namespace cosched {
namespace {

void record_trace(Tracer& tracer, std::uint64_t trace_id, const char* root) {
  TraceContext context = tracer.make_context(trace_id);
  TraceContextScope scope(context);
  tracer.begin_span(root, 2.5, "reason=policy");
  tracer.begin_span("replan.fresh_solve");
  tracer.end_span();
  tracer.end_span();
}

TEST(Otlp, TracesJsonPairsSpansAndZeroPadsIds) {
  Tracer tracer;
  tracer.set_enabled(true);
  record_trace(tracer, 0xabc, "online.replan");
  tracer.set_enabled(false);

  std::string json = otlp_traces_json(tracer);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(json.find("\"scopeSpans\""), std::string::npos);
  EXPECT_NE(json.find("\"service.name\""), std::string::npos);
  // The tracer's 64-bit id, zero-padded to the 32-hex OTLP traceId.
  EXPECT_NE(json.find("\"traceId\":\"00000000000000000000000000000abc\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"online.replan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replan.fresh_solve\""), std::string::npos);
  // The nested span carries its parent's span id.
  EXPECT_NE(json.find("\"parentSpanId\""), std::string::npos);
  EXPECT_NE(json.find("\"startTimeUnixNano\""), std::string::npos);
  EXPECT_NE(json.find("\"endTimeUnixNano\""), std::string::npos);
  EXPECT_NE(json.find("cosched.virtual_time"), std::string::npos);
  EXPECT_NE(json.find("\"cosched.detail\""), std::string::npos);
}

TEST(Otlp, UntracedSpansGetSyntheticNonzeroTraceIds) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.begin_span("solo");  // no context: trace_id 0
  tracer.end_span();
  tracer.set_enabled(false);

  std::string json = otlp_traces_json(tracer);
  EXPECT_NE(json.find("\"name\":\"solo\""), std::string::npos);
  // OTLP requires nonzero trace ids; the all-zero id must not appear.
  EXPECT_EQ(json.find("\"traceId\":\"00000000000000000000000000000000\""),
            std::string::npos)
      << json;
}

TEST(Otlp, TailFilterExportsOnlyRetainedTraces) {
  Tracer tracer;
  tracer.set_enabled(true);
  record_trace(tracer, 0xaaa, "online.replan");
  record_trace(tracer, 0xbbb, "rpc.request");
  tracer.set_enabled(false);

  TailSampler tail;
  TailPolicy slow;
  slow.name = "slow";
  slow.span_prefix = "online.replan";
  slow.min_duration_us = 10.0;
  tail.configure({slow});
  CompletedSpan done;
  done.name = "online.replan";
  done.trace_id = 0xaaa;
  done.duration_us = 50.0;
  ASSERT_TRUE(tail.observe(done));

  std::string json = otlp_traces_json(tracer, &tail);
  EXPECT_NE(json.find("00000000000000000000000000000aaa"), std::string::npos)
      << json;
  // The unretained trace (and untraced spans) stay out of the export.
  EXPECT_EQ(json.find("00000000000000000000000000000bbb"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("rpc.request"), std::string::npos);
}

TEST(Otlp, MetricsJsonCarriesKindsAndHistogramExemplars) {
  MetricsRegistry reg;
  reg.counter("cosched_test_widgets_total", "widgets").inc(42);
  reg.gauge("cosched_test_depth", "depth").set(2.5);
  HistogramMetric& latency =
      reg.histogram("cosched_test_latency_seconds", "latency", {0.1, 1.0});
  latency.observe(0.05, 0xfeed);
  latency.observe(0.5);
  latency.observe(5.0);

  std::string json = otlp_metrics_json(reg);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"resourceMetrics\""), std::string::npos);
  EXPECT_NE(json.find("\"scopeMetrics\""), std::string::npos);
  // Counter: monotonic cumulative sum. Gauge: gauge. Histogram: bounds,
  // per-bucket (non-cumulative) counts and the bucket-0 exemplar.
  EXPECT_NE(json.find("\"name\":\"cosched_test_widgets_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"isMonotonic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"aggregationTemporality\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"explicitBounds\":[0.1,1]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bucketCounts\":[\"1\",\"1\",\"1\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"traceId\":\"0000000000000000000000000000feed\""),
            std::string::npos)
      << json;
}

TEST(Otlp, EndpointSpecParsing) {
  OtlpEndpoint endpoint;
  std::string error;
  ASSERT_TRUE(parse_otlp_endpoint("collector.local", endpoint, error));
  EXPECT_EQ(endpoint.host, "collector.local");
  EXPECT_EQ(endpoint.port, 4318);  // OTLP/HTTP default

  ASSERT_TRUE(parse_otlp_endpoint("127.0.0.1:9999", endpoint, error));
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 9999);

  EXPECT_FALSE(parse_otlp_endpoint("", endpoint, error));
  EXPECT_FALSE(parse_otlp_endpoint(":1234", endpoint, error));
  EXPECT_FALSE(parse_otlp_endpoint("host:", endpoint, error));
  EXPECT_FALSE(parse_otlp_endpoint("host:notaport", endpoint, error));
  EXPECT_FALSE(parse_otlp_endpoint("host:70000", endpoint, error));
}

TEST(Otlp, WriteFilesDropsBothJsonDocuments) {
  Tracer tracer;
  tracer.set_enabled(true);
  record_trace(tracer, 0x77, "online.replan");
  tracer.set_enabled(false);
  MetricsRegistry reg;
  reg.counter("cosched_test_total", "t").inc(1);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cosched_otlp_test";
  std::filesystem::remove_all(dir);
  std::vector<std::string> written;
  ASSERT_TRUE(otlp_write_files(dir.string(), tracer, reg, nullptr, {},
                               &written));
  ASSERT_EQ(written.size(), 2u);
  for (const std::string& path : written) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string first_char;
    in >> first_char;
    EXPECT_EQ(first_char[0], '{') << path;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cosched
