// LoadRunner integration tests: generated load against a real CoschedServer
// over loopback. Net-labelled — these open sockets.
#include <gtest/gtest.h>

#include "loadgen/arrival.hpp"
#include "loadgen/runner.hpp"
#include "loadgen/shapes.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"

namespace cosched {
namespace {

/// A small virtual-time server every test drives; each replan stays cheap
/// (few machines, every-k admission) so the suite runs in seconds.
class LoadRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;
    options.worker_threads = 4;
    options.request_deadline_seconds = 60.0;
    options.service.wall_clock = false;
    options.service.scheduler.cores = 4;
    options.service.scheduler.machines = 4;
    options.service.scheduler.admission.every_k = 4;
    options.service.scheduler.log_process_finish = false;
    server_ = std::make_unique<CoschedServer>(options);
    std::string error;
    ASSERT_TRUE(server_->start(error)) << error;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::uint64_t drain_completions() {
    ClientOptions options;
    options.port = server_->port();
    options.request_timeout_seconds = 60.0;
    options.max_attempts = 1;
    CoschedClient client(options);
    DrainResponse drained;
    EXPECT_TRUE(client.drain(drained).ok());
    return drained.completions;
  }

  std::unique_ptr<CoschedServer> server_;
};

TEST_F(LoadRunnerTest, OpenLoopExcludesWarmupAndCooldown) {
  ShapeSpec shape;
  shape.work_lo = 1.0;
  shape.work_hi = 4.0;
  std::vector<TraceJob> jobs = build_jobs(shape, 40);

  ArrivalSpec arrival;
  arrival.process = ArrivalProcess::Uniform;
  arrival.rate_rps = 100.0;  // 0.4 s of traffic
  arrival.count = 40;
  std::vector<Real> schedule = build_arrival_schedule(arrival);

  RunnerOptions options;
  options.port = server_->port();
  options.mode = LoadMode::Open;
  options.concurrency = 4;
  options.warmup = 8;
  options.cooldown = 4;
  options.virtual_rate = 0.5;
  LoadResult result = LoadRunner(options).run(jobs, schedule);

  // Every request ran exactly once and landed in the right phase bucket.
  EXPECT_EQ(result.total_errors(), 0u);
  EXPECT_EQ(result.warmup.requests, 8u);
  EXPECT_EQ(result.measure.requests, 28u);
  EXPECT_EQ(result.cooldown.requests, 4u);
  // Only measure-phase samples reach the reported histogram.
  EXPECT_EQ(result.measure.latency_ms.count(), 28u);
  EXPECT_GT(result.offered_rps, 0.0);
  EXPECT_GT(result.achieved_rps(), 0.0);
  // The server really accepted all 40 (warm-up is sent, just not measured).
  EXPECT_EQ(drain_completions(), 40u);
}

TEST_F(LoadRunnerTest, ClosedLoopStreamsCompleteEverything) {
  ShapeSpec shape;
  shape.work_lo = 1.0;
  shape.work_hi = 4.0;
  shape.seed = 9;
  std::vector<TraceJob> jobs = build_jobs(shape, 30);

  RunnerOptions options;
  options.port = server_->port();
  options.mode = LoadMode::Closed;
  options.concurrency = 3;  // stream count in closed mode
  options.warmup = 5;
  options.virtual_rate = 0.5;
  LoadResult result = LoadRunner(options).run(jobs, {});

  EXPECT_EQ(result.total_errors(), 0u);
  EXPECT_EQ(result.total_requests(), 30u);
  EXPECT_EQ(result.warmup.requests, 5u);
  EXPECT_EQ(result.measure.requests, 25u);
  // Closed mode has no offered rate and never sends late.
  EXPECT_EQ(result.offered_rps, 0.0);
  EXPECT_EQ(result.measure.late_sends, 0u);
  EXPECT_EQ(drain_completions(), 30u);
}

TEST_F(LoadRunnerTest, OverdrivenOpenLoopReportsLateSends) {
  ShapeSpec shape;
  shape.work_lo = 1.0;
  shape.work_hi = 2.0;
  std::vector<TraceJob> jobs = build_jobs(shape, 24);

  // A 10 kHz schedule with a single connection cannot be honoured: the
  // generator must *report* the backlog (late sends), not hide it by
  // silently stretching the schedule — that is the coordinated-omission
  // contract.
  ArrivalSpec arrival;
  arrival.process = ArrivalProcess::Uniform;
  arrival.rate_rps = 10000.0;
  arrival.count = 24;
  std::vector<Real> schedule = build_arrival_schedule(arrival);

  RunnerOptions options;
  options.port = server_->port();
  options.mode = LoadMode::Open;
  options.concurrency = 1;
  options.late_threshold_ms = 0.5;
  options.virtual_rate = 0.5;
  LoadResult result = LoadRunner(options).run(jobs, schedule);

  EXPECT_EQ(result.total_errors(), 0u);
  EXPECT_EQ(result.total_requests(), 24u);
  std::uint64_t late = result.warmup.late_sends + result.measure.late_sends +
                       result.cooldown.late_sends;
  EXPECT_GT(late, 12u);  // nearly every send runs behind schedule
  EXPECT_GT(result.measure.max_late_ms, 0.5);
  EXPECT_EQ(drain_completions(), 24u);
}

}  // namespace
}  // namespace cosched
