// Unit tests for src/comm: decompositions, Eq. 10-11 communication time,
// communication properties.
#include <gtest/gtest.h>

#include "comm/comm_topology.hpp"
#include "comm/decomposition.hpp"

namespace cosched {
namespace {

TEST(Decomposition, Chain1D) {
  auto p = make_1d_pattern(4, 100.0);
  EXPECT_EQ(p.dims, 1);
  EXPECT_EQ(p.neighbors[0].size(), 1u);  // rank 0: right only
  EXPECT_EQ(p.neighbors[1].size(), 2u);
  EXPECT_EQ(p.neighbors[3].size(), 1u);
  EXPECT_EQ(p.neighbors[1][0].peer_rank, 0);
  EXPECT_EQ(p.neighbors[1][1].peer_rank, 2);
  for (const auto& nb : p.neighbors)
    for (const auto& e : nb) {
      EXPECT_DOUBLE_EQ(e.bytes, 100.0);
      EXPECT_EQ(e.dir, Direction::X);
    }
}

TEST(Decomposition, Grid2DNeighborCounts) {
  auto p = make_2d_pattern(3, 3, 10.0, 20.0);
  EXPECT_EQ(p.num_procs, 9);
  // Corner (rank 0): 2 neighbors; edge (rank 1): 3; center (rank 4): 4.
  EXPECT_EQ(p.neighbors[0].size(), 2u);
  EXPECT_EQ(p.neighbors[1].size(), 3u);
  EXPECT_EQ(p.neighbors[4].size(), 4u);
}

TEST(Decomposition, Grid2DSymmetry) {
  auto p = make_2d_pattern(3, 2, 7.0, 9.0);
  // Every edge appears in both directions with equal volume.
  for (std::int32_t r = 0; r < p.num_procs; ++r) {
    for (const auto& e : p.neighbors[static_cast<std::size_t>(r)]) {
      bool reciprocal = false;
      for (const auto& back :
           p.neighbors[static_cast<std::size_t>(e.peer_rank)]) {
        if (back.peer_rank == r && back.bytes == e.bytes &&
            back.dir == e.dir) {
          reciprocal = true;
          break;
        }
      }
      EXPECT_TRUE(reciprocal) << "edge " << r << "->" << e.peer_rank;
    }
  }
}

TEST(Decomposition, Grid3DCenterHasSixNeighbors) {
  auto p = make_3d_pattern(3, 3, 3, 1.0, 2.0, 3.0);
  EXPECT_EQ(p.num_procs, 27);
  EXPECT_EQ(p.neighbors[13].size(), 6u);  // center of 3x3x3
}

TEST(Decomposition, BalancedGridFactorization) {
  auto p12 = make_grid_pattern(12, 2, 1.0);
  EXPECT_EQ(p12.grid[0] * p12.grid[1], 12);
  EXPECT_LE(std::abs(p12.grid[0] - p12.grid[1]), 2);
  auto p8 = make_grid_pattern(8, 3, 1.0);
  EXPECT_EQ(p8.grid[0] * p8.grid[1] * p8.grid[2], 8);
  EXPECT_EQ(p8.grid[0], 2);
  EXPECT_EQ(p8.grid[1], 2);
  EXPECT_EQ(p8.grid[2], 2);
}

TEST(Decomposition, DefaultPatternDims) {
  EXPECT_EQ(default_pattern_for("CG-Par", 6, 1.0).dims, 1);
  EXPECT_EQ(default_pattern_for("BT-Par", 6, 1.0).dims, 2);
  EXPECT_EQ(default_pattern_for("MG-Par", 8, 1.0).dims, 3);
}

// ----------------------------------------------------------- CommTopology

/// Paper Fig. 2: a 3x3 2D job (processes p1..p9 = global 0..8) plus a serial
/// job p10 (global 9), scheduled on 2-core machines.
class Fig2Topology : public ::testing::Test {
 protected:
  void SetUp() override {
    pattern_ = make_2d_pattern(3, 3, 100.0, 100.0);
    topo_.attach(/*job=*/0, /*first_process=*/0, pattern_);
  }
  JobCommPattern pattern_;
  CommTopology topo_;
};

TEST_F(Fig2Topology, ExternalBytesCountsOnlyRemoteNeighbors) {
  // p5 (global 4, the grid center) co-located with p6 (global 5):
  // neighbors are p2(1), p4(3), p6(5), p8(7); only p6 is local.
  ProcessId co[1] = {5};
  EXPECT_DOUBLE_EQ(topo_.external_bytes(4, co), 300.0);
  // Co-located with a non-neighbor: all four links are external.
  ProcessId co2[1] = {8};
  EXPECT_DOUBLE_EQ(topo_.external_bytes(4, co2), 400.0);
}

TEST_F(Fig2Topology, CommTimeDividesByBandwidth) {
  ProcessId co[1] = {5};
  EXPECT_DOUBLE_EQ(topo_.comm_time(4, co, 100.0), 3.0);
}

TEST_F(Fig2Topology, ProcessWithoutPatternCommunicatesNothing) {
  ProcessId co[1] = {4};
  EXPECT_DOUBLE_EQ(topo_.external_bytes(9, co), 0.0);
}

TEST_F(Fig2Topology, CommPropertyMatchesPaperExample) {
  // Node <p1,p2> (globals {0,1}): the paper derives property (1,2):
  // one x-communication (p2-p3) — p1-p2 is internal — and two
  // y-communications (p1-p4, p2-p5).
  std::vector<ProcessId> node{0, 1};
  auto prop = topo_.comm_property(0, node);
  EXPECT_EQ(prop[0], 1);
  EXPECT_EQ(prop[1], 2);
  EXPECT_EQ(prop[2], 0);
}

TEST_F(Fig2Topology, CondensableNodesShareProperty) {
  // The paper condenses <1,3>, <1,7>, <1,9> (globals {0,2},{0,6},{0,8}):
  // each pairs two corners, property (2,2).
  for (ProcessId other : {2, 6, 8}) {
    std::vector<ProcessId> node{0, other};
    auto prop = topo_.comm_property(0, node);
    EXPECT_EQ(prop[0], 2) << "peer " << other;
    EXPECT_EQ(prop[1], 2) << "peer " << other;
  }
  // But <1,2> (globals {0,1}) differs: (1,2).
  std::vector<ProcessId> adjacent{0, 1};
  auto prop = topo_.comm_property(0, adjacent);
  EXPECT_NE(std::make_pair(prop[0], prop[1]), std::make_pair(2, 2));
}

TEST_F(Fig2Topology, PropertyOfForeignJobIsZero) {
  std::vector<ProcessId> node{0, 1};
  auto prop = topo_.comm_property(77, node);  // unknown job
  EXPECT_EQ(prop[0] + prop[1] + prop[2], 0);
}

TEST(CommTopology, DoubleAttachRejected) {
  CommTopology topo;
  auto p = make_1d_pattern(2, 1.0);
  topo.attach(0, 0, p);
  EXPECT_THROW(topo.attach(0, 2, p), ContractViolation);
}

}  // namespace
}  // namespace cosched
