// Tests for the consistent-hash ring (src/shard/hash_ring): deterministic
// placement, near-uniform key distribution over virtual nodes, and the
// consistent-hashing contract — membership changes move only the keys they
// must (≤ K/N expected remap on add, exactly the removed shard's keys on
// remove).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "shard/hash_ring.hpp"

namespace cosched {
namespace {

std::vector<std::string> tenant_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    keys.push_back("tenant-" + std::to_string(i));
  return keys;
}

TEST(HashRing, EmptyRingAnswersNoShard) {
  HashRing ring;
  EXPECT_EQ(ring.shard_for(42), -1);
  EXPECT_EQ(ring.shard_for_key("anything"), -1);
  EXPECT_EQ(ring.shard_count(), 0u);
}

TEST(HashRing, PlacementIsDeterministic) {
  // Two rings built independently (different insertion order) agree on
  // every key: placement is a pure function of membership, not history.
  HashRing a(64);
  for (int s = 0; s < 4; ++s) a.add_shard(s);
  HashRing b(64);
  for (int s = 3; s >= 0; --s) b.add_shard(s);
  for (const std::string& key : tenant_keys(500))
    EXPECT_EQ(a.shard_for_key(key), b.shard_for_key(key)) << key;
  // And a fixed key pins to a fixed shard across runs/platforms (the wire
  // hash is platform-independent by construction).
  EXPECT_EQ(a.shard_for_key("tenant-0"), a.shard_for_key("tenant-0"));
}

TEST(HashRing, DuplicateAddAndAbsentRemoveAreNoOps) {
  HashRing ring(16);
  ring.add_shard(0);
  ring.add_shard(1);
  std::size_t points = ring.point_count();
  ring.add_shard(1);
  EXPECT_EQ(ring.point_count(), points);
  ring.remove_shard(7);
  EXPECT_EQ(ring.point_count(), points);
  EXPECT_EQ(ring.shard_count(), 2u);
}

TEST(HashRing, DistributionIsNearUniformOverVirtualNodes) {
  const int kShards = 4;
  const int kKeys = 4000;
  HashRing ring(128);
  for (int s = 0; s < kShards; ++s) ring.add_shard(s);

  std::map<std::int32_t, int> counts;
  for (const std::string& key : tenant_keys(kKeys))
    ++counts[ring.shard_for_key(key)];

  ASSERT_EQ(counts.size(), static_cast<std::size_t>(kShards));
  // With 128 vnodes/shard the arc-length variance is small; accept any
  // shard within ±40% of the fair share (1000). Far looser than observed
  // (~±10%), far tighter than what a broken ring (one shard owning
  // everything) could pass.
  const int fair = kKeys / kShards;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, fair * 6 / 10) << "shard " << shard << " starved";
    EXPECT_LT(count, fair * 14 / 10) << "shard " << shard << " overloaded";
  }
}

TEST(HashRing, AddingAShardMovesOnlyKeysToTheNewShard) {
  const int kKeys = 3000;
  HashRing before(64);
  for (int s = 0; s < 4; ++s) before.add_shard(s);
  HashRing after(64);
  for (int s = 0; s < 5; ++s) after.add_shard(s);

  int moved = 0;
  for (const std::string& key : tenant_keys(kKeys)) {
    std::int32_t old_shard = before.shard_for_key(key);
    std::int32_t new_shard = after.shard_for_key(key);
    if (old_shard != new_shard) {
      // Consistent hashing's defining property: a key either stays put or
      // moves to the shard that just joined — never between old shards.
      EXPECT_EQ(new_shard, 4) << key;
      ++moved;
    }
  }
  // Expected remap is K/N = 3000/5 = 600. Allow 2x slack; a modulo-style
  // "hash % N" router would remap ~4/5 of all keys (~2400) and fail.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * kKeys / 5);
}

TEST(HashRing, RemovingAShardMovesOnlyItsKeys) {
  const int kKeys = 3000;
  HashRing before(64);
  for (int s = 0; s < 4; ++s) before.add_shard(s);
  HashRing after(64);
  for (int s = 0; s < 4; ++s) after.add_shard(s);
  after.remove_shard(2);

  for (const std::string& key : tenant_keys(kKeys)) {
    std::int32_t old_shard = before.shard_for_key(key);
    std::int32_t new_shard = after.shard_for_key(key);
    if (old_shard == 2) {
      EXPECT_NE(new_shard, 2) << key;  // orphaned keys re-home...
    } else {
      EXPECT_EQ(new_shard, old_shard) << key;  // ...everyone else stays
    }
  }
}

TEST(HashRing, AddThenRemoveRoundTripsExactly) {
  // Membership changes are fully reversible: remove(4) after add(4)
  // restores the original placement for every key.
  HashRing ring(64);
  for (int s = 0; s < 4; ++s) ring.add_shard(s);
  std::vector<std::int32_t> original;
  std::vector<std::string> keys = tenant_keys(1000);
  original.reserve(keys.size());
  for (const std::string& key : keys) original.push_back(ring.shard_for_key(key));

  ring.add_shard(4);
  ring.remove_shard(4);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(ring.shard_for_key(keys[i]), original[i]) << keys[i];
}

}  // namespace
}  // namespace cosched
