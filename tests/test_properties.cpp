// Property-based sweeps (parameterized gtest) over randomized instances:
// cross-solver agreement, invariants of the search, admissibility of h(v).
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "graph/level_stats.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pe_problem;
using testhelpers::random_serial_problem;

// ------------------------------------------ cross-solver agreement sweep

class CrossSolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CrossSolverAgreement, OaStarOsvpBruteAgree) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::int32_t jobs = 6 + static_cast<std::int32_t>(rng.uniform(7));
  const std::uint32_t cores = rng.uniform01() < 0.5 ? 2u : 4u;
  Problem p = random_serial_problem(jobs, cores,
                                    static_cast<std::uint64_t>(seed) * 31);
  auto brute = solve_brute_force(p);
  auto oa = solve_oastar(p);
  auto osvp = solve_osvp(p);
  ASSERT_TRUE(oa.found && osvp.found);
  EXPECT_NEAR(oa.objective, brute.objective, 1e-9)
      << "jobs=" << jobs << " cores=" << cores;
  EXPECT_NEAR(osvp.objective, brute.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverAgreement,
                         ::testing::Range(0, 20));

// ----------------------------------------------- admissibility of h(v)

class HeuristicAdmissibility : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicAdmissibility, S2LowerBoundsTrueRemainingCost) {
  // For random prefixes of the optimal path, strategy-2 h must never exceed
  // the true cost of the remaining suffix (serial-only instances).
  const int seed = GetParam();
  Problem p = random_serial_problem(12, 4,
                                    static_cast<std::uint64_t>(seed) + 500);
  auto opt = solve_oastar(p);
  ASSERT_TRUE(opt.found);
  NodeEvaluator eval(p, *p.full_model);
  LevelStats stats = LevelStats::build_exact(eval, HWeightMode::Admissible);

  // Walk the optimal path; at each prefix compare h to the true suffix cost.
  std::vector<Real> node_costs;
  for (const auto& node : opt.solution.machines)
    node_costs.push_back(eval.weight(node));
  std::vector<bool> scheduled(static_cast<std::size_t>(p.n()), false);
  Real suffix_cost = opt.objective;
  for (std::size_t k = 0; k < opt.solution.machines.size(); ++k) {
    std::vector<ProcessId> unscheduled;
    for (std::int32_t q = 0; q < p.n(); ++q)
      if (!scheduled[static_cast<std::size_t>(q)]) unscheduled.push_back(q);
    std::int32_t k_rem =
        static_cast<std::int32_t>(unscheduled.size()) / p.u();
    Real h = stats.strategy2_h(unscheduled, k_rem);
    EXPECT_LE(h, suffix_cost + 1e-9)
        << "prefix " << k << " seed " << seed;
    for (ProcessId q : opt.solution.machines[k])
      scheduled[static_cast<std::size_t>(q)] = true;
    suffix_cost -= node_costs[k];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicAdmissibility,
                         ::testing::Range(0, 10));

// -------------------------------------------------- dismissal equivalence

class DismissalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DismissalEquivalence, PaperAndParetoAgreeOnSerialInstances) {
  // With no parallel jobs the Pareto front degenerates to min-distance;
  // both policies must produce identical objectives.
  const int seed = GetParam();
  Problem p = random_serial_problem(10, 2,
                                    static_cast<std::uint64_t>(seed) + 900);
  SearchOptions paper;
  paper.dismiss = DismissPolicy::PaperMinDistance;
  SearchOptions pareto;
  pareto.dismiss = DismissPolicy::ParetoDominance;
  auto a = solve_oastar(p, paper);
  auto b = solve_oastar(p, pareto);
  ASSERT_TRUE(a.found && b.found);
  EXPECT_NEAR(a.objective, b.objective, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DismissalEquivalence,
                         ::testing::Range(0, 8));

// ---------------------------------------------- HA* quality distribution

TEST(HaStarQuality, DistributionOverRandomMixes) {
  // HA* is a heuristic: on threshold-shaped landscapes with parallel jobs
  // individual instances can land well off the optimum (a documented
  // reproduction finding; the paper's ~10% figure is an average over its
  // workloads). Lock in the distribution: valid always, never better than
  // optimal, small average gap, bounded worst case.
  Real worst = 1.0;
  Real total = 0.0;
  int count = 0;
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 7000);
    std::int32_t serial = 8 + static_cast<std::int32_t>(rng.uniform(8));
    std::vector<std::int32_t> parallel;
    if (rng.uniform01() < 0.5)
      parallel.push_back(2 + static_cast<std::int32_t>(rng.uniform(3)));
    Problem p = random_pe_problem(serial, parallel, 4,
                                  static_cast<std::uint64_t>(seed) + 8000);
    SearchOptions exact;
    exact.dismiss = DismissPolicy::ParetoDominance;
    auto opt = solve_oastar(p, exact);
    auto ha = solve_hastar(p);
    ASSERT_TRUE(opt.found && ha.found);
    validate_solution(p, ha.solution);
    EXPECT_GE(ha.objective, opt.objective - 1e-9) << "seed " << seed;
    Real ratio = opt.objective > 0 ? ha.objective / opt.objective : 1.0;
    worst = std::max(worst, ratio);
    total += ratio;
    ++count;
  }
  EXPECT_LT(total / count, 1.25);
  EXPECT_LT(worst, 1.80);
}

// ------------------------------------------------ objective monotonicity

class ObjectiveScaling : public ::testing::TestWithParam<int> {};

TEST_P(ObjectiveScaling, MoreContentionNeverHelps) {
  // Raising one process's miss rate cannot lower the optimal objective.
  const int seed = GetParam();
  SyntheticProblemSpec spec;
  spec.cores = 2;
  spec.serial_jobs = 8;
  spec.seed = static_cast<std::uint64_t>(seed) + 1300;
  Problem base = build_synthetic_problem(spec);
  auto* base_model = dynamic_cast<const SyntheticDegradationModel*>(
      base.contention_model.get());
  ASSERT_NE(base_model, nullptr);

  std::vector<Real> rates, sens;
  for (std::int32_t q = 0; q < base.n(); ++q) {
    rates.push_back(base_model->miss_rate(q));
    sens.push_back(base_model->sensitivity(q));
  }
  rates[0] = std::min<Real>(1.0, rates[0] + 0.2);
  Problem hotter = base;
  auto hotter_model = std::make_shared<SyntheticDegradationModel>(
      std::move(rates), std::move(sens), base_model->capacity());
  hotter.contention_model = hotter_model;
  hotter.full_model = hotter_model;

  auto r_base = solve_oastar(base);
  auto r_hot = solve_oastar(hotter);
  ASSERT_TRUE(r_base.found && r_hot.found);
  EXPECT_GE(r_hot.objective, r_base.objective - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveScaling, ::testing::Range(0, 6));

}  // namespace
}  // namespace cosched
