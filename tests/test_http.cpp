// Tests for the observability side door: the minimal HTTP/1.0 endpoint
// (src/obs/http), the live CoschedServer's /metrics and /healthz routes —
// the acceptance criterion that GET /metrics serves valid Prometheus text
// including cosched_cache_hits_total and cosched_rpc_request_seconds —
// the v2 TraceDump RPC, and backward compatibility with v1 peers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/http.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "online/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"

namespace cosched {
namespace {

/// One-shot raw HTTP exchange; returns the full response (status line,
/// headers and body) or empty on transport failure.
std::string raw_http(std::uint16_t port, const std::string& request) {
  NetStatus status = NetStatus::Ok;
  Deadline deadline = Deadline::after(5.0);
  Socket socket = Socket::connect_to("127.0.0.1", port, deadline, status);
  if (status != NetStatus::Ok) return {};
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok)
    return {};
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus recv_status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (recv_status == NetStatus::Closed) break;
    if (recv_status != NetStatus::Ok) return {};
    response.append(chunk, got);
  }
  return response;
}

std::string http_body(const std::string& response) {
  std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

TEST(HttpEndpointTest, RoutesGetRequestsAndRejectsEverythingElse) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/ping", [](const std::string&, std::string& body,
                              std::string& content_type) {
    body = "pong";
    content_type = "text/plain";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;
  ASSERT_NE(endpoint.port(), 0);

  std::string ok = raw_http(endpoint.port(), "GET /ping HTTP/1.0\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200", 0), 0u) << ok;
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 4"), std::string::npos);
  EXPECT_EQ(http_body(ok), "pong");

  std::string missing =
      raw_http(endpoint.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u) << missing;

  // Recognizable-but-unsupported method: 405 + Allow, not a silent close.
  std::string post = raw_http(endpoint.port(), "POST /ping HTTP/1.0\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.0 405", 0), 0u) << post;
  EXPECT_NE(post.find("Allow: GET, HEAD"), std::string::npos) << post;

  // Garbage that is not even a method token: 400.
  std::string garbage = raw_http(endpoint.port(), "get /ping HTTP/1.0\r\n\r\n");
  EXPECT_EQ(garbage.rfind("HTTP/1.0 400", 0), 0u) << garbage;

  endpoint.stop();
  endpoint.stop();  // idempotent
}

TEST(HttpEndpointTest, HeadReturnsHeadersWithoutBody) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/ping", [](const std::string&, std::string& body,
                              std::string& content_type) {
    body = "pong";
    content_type = "text/plain";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;

  std::string head = raw_http(endpoint.port(), "HEAD /ping HTTP/1.0\r\n\r\n");
  EXPECT_EQ(head.rfind("HTTP/1.0 200", 0), 0u) << head;
  // The headers advertise the length a GET would carry...
  EXPECT_NE(head.find("Content-Length: 4"), std::string::npos) << head;
  // ...but the body itself is omitted.
  EXPECT_EQ(http_body(head), "");

  std::string missing =
      raw_http(endpoint.port(), "HEAD /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u) << missing;
  EXPECT_EQ(http_body(missing), "");

  endpoint.stop();
}

TEST(HttpEndpointTest, IndexPageListsRegisteredRoutes) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/ping", [](const std::string&, std::string& body,
                              std::string&) {
    body = "pong";
    return true;
  });
  endpoint.handle("/stats", [](const std::string&, std::string& body,
                               std::string&) {
    body = "{}";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;

  // The endpoint synthesizes a "/" index once started; route_paths() shows
  // it alongside the caller's routes.
  std::vector<std::string> paths = endpoint.route_paths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "/ping");
  EXPECT_EQ(paths[1], "/stats");
  EXPECT_EQ(paths[2], "/");

  std::string index = raw_http(endpoint.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_EQ(index.rfind("HTTP/1.0 200", 0), 0u) << index;
  std::string body = http_body(index);
  EXPECT_NE(body.find("routes:"), std::string::npos) << body;
  EXPECT_NE(body.find("  /ping\n"), std::string::npos) << body;
  EXPECT_NE(body.find("  /stats\n"), std::string::npos) << body;
  // The index lists itself too — curl of any listed path succeeds.
  EXPECT_NE(body.find("  /\n"), std::string::npos) << body;

  endpoint.stop();
}

// A caller that claims "/" itself wins: no synthesized index on top.
TEST(HttpEndpointTest, CallerProvidedRootIsNotOverridden) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/", [](const std::string&, std::string& body,
                          std::string&) {
    body = "custom root";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;
  EXPECT_EQ(endpoint.route_paths().size(), 1u);
  std::string root = raw_http(endpoint.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_EQ(http_body(root), "custom root");
  endpoint.stop();
}

TEST(HttpEndpointTest, RejectsRequestBodies) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/ping", [](const std::string&, std::string& body,
                              std::string&) {
    body = "pong";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;

  // Announced body (Content-Length > 0), even on a GET.
  std::string announced = raw_http(
      endpoint.port(), "GET /ping HTTP/1.0\r\nContent-Length: 3\r\n\r\n");
  EXPECT_EQ(announced.rfind("HTTP/1.0 400", 0), 0u) << announced;

  // Bytes shipped past the head terminator.
  std::string shipped =
      raw_http(endpoint.port(), "GET /ping HTTP/1.0\r\n\r\nxyz");
  EXPECT_EQ(shipped.rfind("HTTP/1.0 400", 0), 0u) << shipped;

  // Chunked uploads are equally unwelcome.
  std::string chunked = raw_http(
      endpoint.port(),
      "GET /ping HTTP/1.0\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(chunked.rfind("HTTP/1.0 400", 0), 0u) << chunked;

  // Content-Length: 0 announces no body and stays acceptable.
  std::string empty = raw_http(
      endpoint.port(), "GET /ping HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(empty.rfind("HTTP/1.0 200", 0), 0u) << empty;

  endpoint.stop();
}

TEST(HttpEndpointTest, OversizedRequestsGetAnAnswerNotAReset) {
  HttpEndpoint endpoint(HttpOptions{});
  endpoint.handle("/ping", [](const std::string&, std::string& body,
                              std::string&) {
    body = "pong";
    return true;
  });
  std::string error;
  ASSERT_TRUE(endpoint.start(error)) << error;

  // A runaway request line (no CRLF in sight) is answered early with 400
  // instead of silently dropping the connection.
  std::string runaway_line(6 * 1024, 'a');
  std::string runaway = raw_http(endpoint.port(), "GET /" + runaway_line);
  EXPECT_EQ(runaway.rfind("HTTP/1.0 400", 0), 0u) << runaway.substr(0, 64);

  // An oversized header block likewise.
  std::string huge_header =
      "GET /ping HTTP/1.0\r\nX-Padding: " + std::string(9 * 1024, 'b') +
      "\r\n\r\n";
  std::string oversized = raw_http(endpoint.port(), huge_header);
  EXPECT_EQ(oversized.rfind("HTTP/1.0 400", 0), 0u)
      << oversized.substr(0, 64);

  endpoint.stop();
}

// ------------------------------------------------- live server routes

ServerOptions observable_server_options() {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;       // ephemeral RPC port
  options.http_port = 0;  // ephemeral observability port
  options.service.wall_clock = false;
  options.service.scheduler.cores = 2;
  options.service.scheduler.machines = 3;
  options.service.scheduler.admission.every_k = 2;
  options.service.scheduler.log_process_finish = false;
  return options;
}

WorkloadTrace small_jobs(std::uint64_t seed, std::int32_t jobs = 8) {
  TraceSpec spec;
  spec.job_count = jobs;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = seed;
  return generate_trace(spec);
}

// THE /metrics acceptance criterion: the exposition parses as Prometheus
// text and carries the cache and RPC-latency series.
TEST(HttpMetrics, LiveServerServesParseablePrometheusText) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ASSERT_NE(server.http_port(), 0);

  // Put some traffic through so the latency histogram has samples.
  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : small_jobs(31).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  std::string health =
      raw_http(server.http_port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(health.rfind("HTTP/1.0 200", 0), 0u) << health;
  EXPECT_EQ(http_body(health), "ok\n");

  std::string response =
      raw_http(server.http_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  ASSERT_EQ(response.rfind("HTTP/1.0 200", 0), 0u) << response;
  std::string exposition = http_body(response);

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(exposition, samples)) << exposition;
  bool saw_cache_hits = false;
  bool saw_request_seconds = false;
  double request_count = -1.0;
  for (const PrometheusSample& s : samples) {
    if (s.name == "cosched_cache_hits_total") saw_cache_hits = true;
    if (s.name.rfind("cosched_rpc_request_seconds", 0) == 0)
      saw_request_seconds = true;
    if (s.name == "cosched_rpc_request_seconds_count")
      request_count = s.value;
  }
  EXPECT_TRUE(saw_cache_hits);
  EXPECT_TRUE(saw_request_seconds);
  EXPECT_GE(request_count, 8.0);  // every submit was observed

  server.stop();
}

TEST(HttpMetrics, EndpointCanBeDisabled) {
  ServerOptions options = observable_server_options();
  options.enable_http = false;
  CoschedServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  EXPECT_EQ(server.http_port(), 0);
  server.stop();
}

// --------------------------------------------------- TraceDump RPC (v2)

TEST(TraceDumpRpc, ReturnsServerSideSpans) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.reset();
  tracer.set_enabled(true);

  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : small_jobs(32, 4).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  TraceDumpResponse dump;
  RpcError rpc_error = client.trace_dump(dump);
  ASSERT_TRUE(rpc_error.ok()) << rpc_error.describe();
  EXPECT_TRUE(dump.enabled);
  EXPECT_GT(dump.event_count, 0u);
  EXPECT_NE(dump.text.find("rpc.request"), std::string::npos);
  EXPECT_EQ(dump.chrome_json.front(), '[');
  EXPECT_NE(dump.chrome_json.find("\"name\":\"rpc.request\""),
            std::string::npos);

  server.stop();
  tracer.set_enabled(false);
  tracer.reset();
}

// ------------------------------------------------------- v1 back-compat

// A v1 peer sends version=1 and must get exactly the v1 bytes back: the
// response envelope answers in version 1 and the metrics body ends after
// the v1 fields, leaving every extension at its zero default.
TEST(ProtocolCompat, V1PeerGetsV1MetricsBody) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  RequestEnvelope request;
  request.version = 1;
  request.type = MessageType::GetMetrics;
  request.request_id = 77;
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);

  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.version, 1);  // server answers in the peer's version
  EXPECT_EQ(response.request_id, 77u);
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;

  WireReader r(response.body);
  MetricsResponse metrics;
  metrics.astar_expansions = 123;  // decoder must reset to the zero default
  ASSERT_TRUE(decode_metrics_response(r, metrics));
  EXPECT_EQ(r.remaining(), 0u);  // v1 body carries no extension bytes
  EXPECT_EQ(metrics.astar_expansions, 0u);
  EXPECT_EQ(metrics.rpc_request_count, 0u);
  EXPECT_EQ(metrics.cache.compactions, 0u);

  server.stop();
}

// A v2 peer (pre-v3: no envelope trace_id, no queue-wait/tracer metrics
// extension) must get exactly the v2 bytes back: the envelope answers in
// version 2 with no trace id and the metrics body ends after the v2 block.
TEST(ProtocolCompat, V2PeerGetsV2MetricsBody) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // Traffic through the v3 client, so the v3-only series would be nonzero
  // if the server leaked them into a v2 reply.
  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : small_jobs(33, 4).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  RequestEnvelope request;
  request.version = 2;
  request.type = MessageType::GetMetrics;
  request.request_id = 79;
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);

  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.version, 2);
  EXPECT_EQ(response.request_id, 79u);
  EXPECT_EQ(response.trace_id, 0u);  // the v3 envelope field never leaks
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;

  WireReader r(response.body);
  MetricsResponse metrics;
  metrics.queue_wait_count = 123;  // decoder must reset to the zero default
  metrics.tracer_dropped_events = 456;
  ASSERT_TRUE(decode_metrics_response(r, metrics));
  EXPECT_EQ(r.remaining(), 0u);  // v2 body ends after the v2 block
  EXPECT_GT(metrics.rpc_request_count, 0u);  // v2 fields are populated...
  EXPECT_EQ(metrics.queue_wait_count, 0u);   // ...v3 fields are absent
  EXPECT_EQ(metrics.queue_wait_seconds_sum, 0.0);
  EXPECT_EQ(metrics.tracer_dropped_events, 0u);

  server.stop();
}

// A v3 peer (pre-v4: no tail-sampler/exemplar extension) must get exactly
// the v3 bytes back under the v4 server: envelope in version 3 with the
// trace id echoed, metrics body ending after the v3 block.
TEST(ProtocolCompat, V3PeerGetsV3MetricsBody) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // Traffic through the v4 client (latency exemplars land in the registry
  // histogram), so the v4-only fields would be nonzero if the server leaked
  // them into a v3 reply.
  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : small_jobs(35, 4).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  RequestEnvelope request;
  request.version = 3;
  request.type = MessageType::GetMetrics;
  request.request_id = 80;
  request.trace_id = 0x5151;
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);

  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.version, 3);
  EXPECT_EQ(response.request_id, 80u);
  EXPECT_EQ(response.trace_id, 0x5151u);  // v3 envelope keeps its trace id
  ASSERT_EQ(response.status, RpcStatus::Ok) << response.error;

  WireReader r(response.body);
  MetricsResponse metrics;
  metrics.tail_considered = 123;  // decoder must reset to the zero default
  metrics.latency_exemplar_trace_id = 456;
  ASSERT_TRUE(decode_metrics_response(r, metrics));
  EXPECT_EQ(r.remaining(), 0u);  // v3 body ends after the v3 block
  EXPECT_GT(metrics.rpc_request_count, 0u);  // v2/v3 fields are populated...
  EXPECT_GT(metrics.queue_wait_count, 0u);
  EXPECT_EQ(metrics.tail_considered, 0u);    // ...v4 fields are absent
  EXPECT_EQ(metrics.tail_kept, 0u);
  EXPECT_EQ(metrics.tail_dropped, 0u);
  EXPECT_EQ(metrics.latency_exemplar_trace_id, 0u);
  EXPECT_EQ(metrics.latency_exemplar_seconds, 0.0);

  server.stop();
}

// A v4 peer sees the tail-sampler accounting and the newest request-latency
// exemplar, whose trace id must refer to a real request.
TEST(ProtocolCompat, V4PeerGetsTailBlockAndLatencyExemplar) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  for (const TraceJob& job : small_jobs(36, 4).jobs) {
    SubmitJobResponse reply;
    ASSERT_TRUE(client.submit_job(job, reply).ok());
  }

  MetricsResponse metrics;
  ASSERT_TRUE(client.get_metrics(metrics).ok());
  // Tail sampler not configured in this test: counters are present (zero),
  // but the latency exemplar reflects the traffic above.
  EXPECT_EQ(metrics.tail_considered, 0u);
  EXPECT_NE(metrics.latency_exemplar_trace_id, 0u);
  EXPECT_GE(metrics.latency_exemplar_seconds, 0.0);

  server.stop();
}

// A peer speaking a future version is refused with VersionMismatch, not
// misparsed.
TEST(ProtocolCompat, FutureVersionIsRefused) {
  CoschedServer server(observable_server_options());
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  NetStatus net = NetStatus::Ok;
  Socket raw = Socket::connect_to("127.0.0.1", server.port(),
                                  Deadline::after(2.0), net);
  ASSERT_EQ(net, NetStatus::Ok);

  RequestEnvelope request;
  request.version = kProtocolVersion + 1;
  request.type = MessageType::GetMetrics;
  request.request_id = 78;
  ASSERT_EQ(write_frame(raw, encode_request(request), Deadline::after(2.0)),
            FrameStatus::Ok);
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(raw, payload, Deadline::after(5.0)), FrameStatus::Ok);

  ResponseEnvelope response;
  ASSERT_TRUE(decode_response(payload, response));
  EXPECT_EQ(response.status, RpcStatus::VersionMismatch);

  server.stop();
}

}  // namespace
}  // namespace cosched
