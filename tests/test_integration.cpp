// Integration tests: the full pipeline over the benchmark catalog (SDC
// model + comm model + all solvers agreeing), mirroring the paper's
// experimental setup end to end at reduced scale.
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "baseline/pg_greedy.hpp"
#include "core/builders.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"

namespace cosched {
namespace {

CatalogProblemSpec small_serial_spec(std::uint32_t cores) {
  CatalogProblemSpec spec;
  spec.cores = cores;
  spec.serial_programs = {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"};
  spec.trace_length = 20000;
  return spec;
}

TEST(Integration, CatalogSerialAllSolversAgree) {
  for (std::uint32_t cores : {2u, 4u}) {
    Problem p = build_catalog_problem(small_serial_spec(cores));
    auto brute = solve_brute_force(p);
    auto oastar = solve_oastar(p);
    auto model = build_ip_model(p, *p.full_model,
                                Aggregation::MaxPerParallelJob);
    auto ip = solve_branch_and_bound(model);
    ASSERT_TRUE(oastar.found);
    ASSERT_TRUE(ip.optimal);
    EXPECT_NEAR(oastar.objective, brute.objective, 1e-9) << cores << " cores";
    EXPECT_NEAR(ip.objective, brute.objective, 1e-6) << cores << " cores";
  }
}

TEST(Integration, CatalogMixedSerialParallelAgree) {
  // Table II shape: serial programs + 2 small MPI jobs.
  CatalogProblemSpec spec;
  spec.cores = 2;
  spec.serial_programs = {"applu", "art", "equake", "vpr"};
  spec.parallel_jobs.push_back({"MG-Par", 2, true, 1e5});
  spec.parallel_jobs.push_back({"LU-Par", 2, true, 1e5});
  spec.trace_length = 20000;
  Problem p = build_catalog_problem(spec);

  auto brute = solve_brute_force(p);
  SearchOptions opt;
  opt.dismiss = DismissPolicy::ParetoDominance;
  auto oastar = solve_oastar(p, opt);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  auto ip = solve_branch_and_bound(model);

  ASSERT_TRUE(oastar.found);
  ASSERT_TRUE(ip.optimal);
  EXPECT_NEAR(oastar.objective, brute.objective, 1e-9);
  EXPECT_NEAR(ip.objective, brute.objective, 1e-6);
}

TEST(Integration, DegradationsAreInPlausibleRange) {
  Problem p = build_catalog_problem(small_serial_spec(4));
  auto r = solve_oastar(p);
  ASSERT_TRUE(r.found);
  auto ev = evaluate_solution(p, r.solution);
  // Catalog degradations are fractions (paper reports up to ~30%).
  for (Real d : ev.per_process) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 2.0);
  }
  EXPECT_GT(ev.total, 0.0);
}

TEST(Integration, OptimalBeatsGreedyBeatsNothing) {
  Problem p = build_catalog_problem(small_serial_spec(4));
  auto opt = solve_oastar(p);
  auto ha = solve_hastar(p);
  Real pg = evaluate_solution(p, solve_pg_greedy(p)).total;
  ASSERT_TRUE(opt.found && ha.found);
  Real opt_obj = evaluate_solution(p, opt.solution).total;
  Real ha_obj = evaluate_solution(p, ha.solution).total;
  EXPECT_LE(opt_obj, ha_obj + 1e-9);
  EXPECT_LE(opt_obj, pg + 1e-9);
}

TEST(Integration, CommVolumeShiftsTheOptimum) {
  // With huge halo volumes, the PC job's processes must be packed together;
  // verify the optimizer responds to the comm model at all.
  CatalogProblemSpec heavy;
  heavy.cores = 2;
  heavy.serial_programs = {"EP", "PI"};
  heavy.parallel_jobs.push_back({"CG-Par", 2, true, 5e6});  // heavy halo
  heavy.trace_length = 20000;
  Problem p = build_catalog_problem(heavy);
  SearchOptions opt;
  opt.dismiss = DismissPolicy::ParetoDominance;
  auto r = solve_oastar(p, opt);
  ASSERT_TRUE(r.found);
  // The two CG-Par processes (global ids 2,3) must share a machine.
  auto m_of = [&](ProcessId q) { return r.solution.machine_of(q); };
  EXPECT_EQ(m_of(2), m_of(3));
}

TEST(Integration, EightCoreBatchRunsEndToEnd) {
  CatalogProblemSpec spec;
  spec.cores = 8;
  spec.serial_programs = {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP",
                          "UA", "DC", "art", "ammp", "applu", "equake",
                          "galgel", "vpr"};
  spec.trace_length = 20000;
  Problem p = build_catalog_problem(spec);
  EXPECT_EQ(p.n(), 16);
  auto ha = solve_hastar(p);
  ASSERT_TRUE(ha.found);
  validate_solution(p, ha.solution);
  Real pg = evaluate_solution(p, solve_pg_greedy(p)).total;
  Real ha_obj = evaluate_solution(p, ha.solution).total;
  // HA* should not lose to PG (it searches a superset of PG-like choices).
  EXPECT_LE(ha_obj, pg * 1.2);
}

}  // namespace
}  // namespace cosched
