// Tests for the load-generation subsystem (src/loadgen): arrival
// schedules, workload shapes, phase control, SLO evaluation, report JSON
// and the baseline comparison gate. Everything here is socket-free; the
// runner (which needs a live server) is covered by test_loadgen_runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "loadgen/arrival.hpp"
#include "loadgen/flat_json.hpp"
#include "loadgen/phase.hpp"
#include "loadgen/report.hpp"
#include "loadgen/shapes.hpp"
#include "loadgen/slo.hpp"

namespace cosched {
namespace {

// ---- arrival schedules -----------------------------------------------------

TEST(Arrival, DeterministicInSeed) {
  ArrivalSpec spec;
  spec.process = ArrivalProcess::Poisson;
  spec.rate_rps = 25.0;
  spec.count = 200;
  spec.seed = 42;
  std::vector<Real> a = build_arrival_schedule(spec);
  std::vector<Real> b = build_arrival_schedule(spec);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);  // bitwise identical, not just close

  spec.seed = 43;
  std::vector<Real> c = build_arrival_schedule(spec);
  EXPECT_NE(a, c);
}

TEST(Arrival, StrictlyIncreasingFromNonNegativeStart) {
  for (ArrivalProcess process :
       {ArrivalProcess::Poisson, ArrivalProcess::Uniform}) {
    ArrivalSpec spec;
    spec.process = process;
    spec.rate_rps = 50.0;
    spec.count = 500;
    std::vector<Real> schedule = build_arrival_schedule(spec);
    ASSERT_EQ(schedule.size(), 500u) << to_string(process);
    EXPECT_GE(schedule.front(), 0.0);
    for (std::size_t i = 1; i < schedule.size(); ++i)
      ASSERT_GT(schedule[i], schedule[i - 1]) << to_string(process);
  }
}

TEST(Arrival, UniformSpacingIsExact) {
  ArrivalSpec spec;
  spec.process = ArrivalProcess::Uniform;
  spec.rate_rps = 10.0;
  spec.count = 50;
  std::vector<Real> schedule = build_arrival_schedule(spec);
  for (std::size_t i = 1; i < schedule.size(); ++i)
    EXPECT_NEAR(schedule[i] - schedule[i - 1], 0.1, 1e-9);
}

TEST(Arrival, PoissonMeanRateConverges) {
  ArrivalSpec spec;
  spec.process = ArrivalProcess::Poisson;
  spec.rate_rps = 40.0;
  spec.count = 4000;
  spec.seed = 7;
  std::vector<Real> schedule = build_arrival_schedule(spec);
  Real offered = schedule_offered_rps(schedule);
  // 4000 exponential draws: the empirical rate should sit within a few
  // percent of the target (sigma of the mean interarrival ~ 1.6%).
  EXPECT_NEAR(offered, 40.0, 40.0 * 0.05);
}

TEST(Arrival, DiurnalModulatesLocalRateButKeepsMean) {
  ArrivalSpec spec;
  spec.process = ArrivalProcess::Uniform;  // no sampling noise
  spec.rate_rps = 100.0;
  spec.count = 6000;  // exactly one 60 s period at rate 100
  spec.diurnal.enabled = true;
  spec.diurnal.period_seconds = 60.0;
  spec.diurnal.amplitude = 0.8;
  std::vector<Real> schedule = build_arrival_schedule(spec);

  // Mean over the whole period is preserved...
  EXPECT_NEAR(schedule_offered_rps(schedule), 100.0, 3.0);

  // ...but the first quarter-period (sin > 0, peak load) must hold many
  // more arrivals than the third quarter (sin < 0, trough).
  auto count_between = [&](Real lo, Real hi) {
    std::int64_t n = 0;
    for (Real t : schedule)
      if (t >= lo && t < hi) ++n;
    return n;
  };
  std::int64_t peak = count_between(0.0, 15.0);
  std::int64_t trough = count_between(30.0, 45.0);
  EXPECT_GT(peak, trough * 2);
}

TEST(Arrival, OfferedRpsEdgeCases) {
  EXPECT_EQ(schedule_offered_rps({}), 0.0);
  EXPECT_EQ(schedule_offered_rps({0.0}), 0.0);  // zero horizon
  EXPECT_EQ(schedule_offered_rps({1.0}), 1.0);  // one arrival in one second
}

// ---- workload shapes -------------------------------------------------------

TEST(Shapes, DeterministicAndWithinUniformBounds) {
  ShapeSpec spec;
  spec.size = SizeDistribution::Uniform;
  spec.work_lo = 5.0;
  spec.work_hi = 30.0;
  spec.seed = 11;
  std::vector<TraceJob> a = build_jobs(spec, 300);
  std::vector<TraceJob> b = build_jobs(spec, 300);
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].work, b[i].work);
    EXPECT_GE(a[i].work, 5.0);
    EXPECT_LE(a[i].work, 30.0);
    EXPECT_GE(a[i].miss_rate, 0.15);
    EXPECT_LE(a[i].miss_rate, 0.75);
    EXPECT_EQ(a[i].arrival_time, 0.0);  // pairing is the runner's job
  }
}

TEST(Shapes, ParetoIsHeavyTailedAndCapped) {
  ShapeSpec spec;
  spec.size = SizeDistribution::Pareto;
  spec.pareto_shape = 1.5;
  spec.pareto_scale = 5.0;
  spec.work_cap = 600.0;
  spec.seed = 3;
  std::vector<TraceJob> jobs = build_jobs(spec, 5000);
  Real max_work = 0.0;
  std::int64_t elephants = 0;
  for (const TraceJob& job : jobs) {
    ASSERT_GE(job.work, 5.0);     // x_m is the distribution's minimum
    ASSERT_LE(job.work, 600.0);   // cap holds
    max_work = std::max(max_work, job.work);
    if (job.work > 50.0) ++elephants;
  }
  // P(X > 10 x_m) = 10^-1.5 ~ 3.2%: 5000 draws must contain elephants,
  // and at least one far beyond anything uniform [5, 30] could produce.
  EXPECT_GT(elephants, 50);
  EXPECT_GT(max_work, 100.0);
}

TEST(Shapes, TenantMixUniformAndSkewed) {
  ShapeSpec spec;
  spec.tenants = 8;
  spec.tenant_skew = 0.0;
  spec.seed = 5;
  std::vector<TraceJob> uniform_jobs = build_jobs(spec, 4000);

  auto tenant_counts = [](const std::vector<TraceJob>& jobs, int tenants) {
    std::vector<std::int64_t> counts(static_cast<std::size_t>(tenants), 0);
    for (const TraceJob& job : jobs) {
      EXPECT_EQ(job.name[0], 't') << job.name;
      std::size_t slash = job.name.find('/');
      EXPECT_NE(slash, std::string::npos) << job.name;
      if (slash == std::string::npos) continue;
      ++counts[static_cast<std::size_t>(
          std::stoi(job.name.substr(1, slash - 1)))];
    }
    return counts;
  };

  std::vector<std::int64_t> uniform_counts = tenant_counts(uniform_jobs, 8);
  for (std::int64_t count : uniform_counts) {
    EXPECT_GT(count, 350);  // 500 expected per tenant
    EXPECT_LT(count, 650);
  }

  spec.tenant_skew = 1.2;
  std::vector<std::int64_t> skewed_counts =
      tenant_counts(build_jobs(spec, 4000), 8);
  // Zipf(1.2): tenant 0 dominates, the tail is starved relative to uniform.
  EXPECT_GT(skewed_counts[0], uniform_counts[0] * 2);
  EXPECT_LT(skewed_counts[7], 500);
}

// ---- phase control ---------------------------------------------------------

TEST(Phase, ClassifiesByGlobalIndex) {
  PhaseController phases(10, 3, 2);
  EXPECT_EQ(phases.classify(0), LoadPhase::Warmup);
  EXPECT_EQ(phases.classify(2), LoadPhase::Warmup);
  EXPECT_EQ(phases.classify(3), LoadPhase::Measure);
  EXPECT_EQ(phases.classify(7), LoadPhase::Measure);
  EXPECT_EQ(phases.classify(8), LoadPhase::Cooldown);
  EXPECT_EQ(phases.classify(9), LoadPhase::Cooldown);
  EXPECT_EQ(phases.measure_count(), 5u);
}

TEST(Phase, NoWarmupNoCooldown) {
  PhaseController phases(4, 0, 0);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(phases.classify(i), LoadPhase::Measure);
}

TEST(Phase, EmptyMeasureWindowIsLegal) {
  PhaseController phases(4, 2, 2);
  EXPECT_EQ(phases.measure_count(), 0u);
  EXPECT_EQ(phases.classify(1), LoadPhase::Warmup);
  EXPECT_EQ(phases.classify(2), LoadPhase::Cooldown);
}

TEST(Phase, StatsMergeAndWindow) {
  PhaseStats a;
  a.requests = 3;
  a.latency_ms.add(1.0);
  a.first_send_s = 2.0;
  a.last_finish_s = 5.0;
  a.late_sends = 1;
  a.max_late_ms = 4.0;
  a.sum_late_ms = 4.0;

  PhaseStats b;
  b.requests = 2;
  b.errors = 1;
  b.latency_ms.add(10.0);
  b.first_send_s = 1.0;
  b.last_finish_s = 4.0;
  b.late_sends = 2;
  b.max_late_ms = 9.0;
  b.sum_late_ms = 12.0;

  a.merge(b);
  EXPECT_EQ(a.requests, 5u);
  EXPECT_EQ(a.errors, 1u);
  EXPECT_EQ(a.late_sends, 3u);
  EXPECT_EQ(a.max_late_ms, 9.0);
  EXPECT_EQ(a.sum_late_ms, 16.0);
  EXPECT_EQ(a.first_send_s, 1.0);
  EXPECT_EQ(a.last_finish_s, 5.0);
  EXPECT_NEAR(a.window_seconds(), 4.0, 1e-12);
  EXPECT_EQ(a.latency_ms.count(), 2u);

  PhaseStats empty;
  EXPECT_EQ(empty.window_seconds(), 0.0);
}

// ---- flat JSON reader ------------------------------------------------------

TEST(FlatJson, FlattensNestedDocument) {
  FlatJson json;
  std::string error;
  ASSERT_TRUE(parse_flat_json(
      R"({"a": 1.5, "b": {"c": "hi", "d": [2, 3]}, "e": true, "f": null})",
      json, error))
      << error;
  EXPECT_EQ(json.number("a", 0.0), 1.5);
  EXPECT_EQ(json.string("b.c", ""), "hi");
  EXPECT_EQ(json.number("b.d.0", 0.0), 2.0);
  EXPECT_EQ(json.number("b.d.1", 0.0), 3.0);
  EXPECT_EQ(json.number("e", 0.0), 1.0);
  EXPECT_FALSE(json.has_number("f"));  // null is a lookup miss
  EXPECT_EQ(json.number("missing", -7.0), -7.0);
}

TEST(FlatJson, UnicodeEscapesDecodeToUtf8) {
  FlatJson json;
  std::string error;
  // ASCII, 2-byte, and 3-byte UTF-8 from BMP escapes (raw string: the parser
  // sees the six-character sequence \u0041, not a pre-decoded 'A').
  ASSERT_TRUE(
      parse_flat_json(R"({"a": "\u0041\u00e9\u20AC"})", json, error))
      << error;
  EXPECT_EQ(json.string("a", ""), "A\xC3\xA9\xE2\x82\xAC");  // A e-acute euro

  // A surrogate pair decodes to one astral code point (U+1F600).
  ASSERT_TRUE(parse_flat_json(R"({"b": "\uD83D\uDE00"})", json, error))
      << error;
  EXPECT_EQ(json.string("b", ""), "\xF0\x9F\x98\x80");

  // Escaped keys flatten under their decoded form.
  ASSERT_TRUE(parse_flat_json(R"({"\u006B": 7})", json, error)) << error;
  EXPECT_EQ(json.number("k", 0.0), 7.0);
}

TEST(FlatJson, InvalidUnicodeEscapesAreRejected) {
  FlatJson json;
  std::string error;
  // Lone high surrogate.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\uD800"})", json, error));
  EXPECT_NE(error.find("surrogate"), std::string::npos) << error;
  // Lone low surrogate.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\uDC00"})", json, error));
  // High surrogate followed by a non-surrogate escape.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\uD800A"})", json, error));
  // High surrogate followed by a plain character.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\uD800x"})", json, error));
  // Too few hex digits / non-hex digits.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\u12"})", json, error));
  EXPECT_FALSE(parse_flat_json(R"({"a": "\u12GZ"})", json, error));
  // Truncated at end of input.
  EXPECT_FALSE(parse_flat_json(R"({"a": "\u00)", json, error));
}

TEST(FlatJson, MalformedInputFailsWithPosition) {
  FlatJson json;
  std::string error;
  EXPECT_FALSE(parse_flat_json(R"({"a": )", json, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_flat_json(R"({"a": 1} trailing)", json, error));
  EXPECT_FALSE(parse_flat_json("", json, error));
}

// ---- report JSON + round trip ----------------------------------------------

BenchReport sample_report() {
  BenchReport report;
  report.bench = "roundtrip";
  report.mode = "open";
  report.deployment = "router";
  report.clients = 4;
  report.jobs_per_client = 0;
  report.requests_ok = 90;
  report.requests_failed = 1;
  report.warmup_requests = 10;
  report.late_sends = 3;
  report.max_late_ms = 12.5;
  report.offered_rps = 20.0;
  report.achieved_rps = 19.25;
  report.wall_seconds = 4.675;
  report.latency.mean = 3.5;
  report.latency.p50 = 2.0;
  report.latency.p95 = 9.0;
  report.latency.p99 = 14.0;
  report.latency.max = 18.0;
  return report;
}

TEST(Report, JsonRoundTripsThroughFlatJson) {
  BenchReport report = sample_report();
  FlatJson json;
  std::string error;
  ASSERT_TRUE(parse_flat_json(report.to_json(), json, error)) << error;
  EXPECT_EQ(json.string("bench", ""), "roundtrip");
  EXPECT_EQ(json.string("mode", ""), "open");
  EXPECT_EQ(json.string("deployment", ""), "router");
  EXPECT_EQ(json.number("requests_ok", 0.0), 90.0);
  EXPECT_EQ(json.number("warmup_requests", 0.0), 10.0);
  EXPECT_EQ(json.number("late_sends", 0.0), 3.0);
  EXPECT_NEAR(json.number("offered_rps", 0.0), 20.0, 1e-3);
  EXPECT_NEAR(json.number("achieved_rps", 0.0), 19.25, 1e-3);
  // Schema compatibility: achieved throughput rides under both names.
  EXPECT_NEAR(json.number("throughput_rps", 0.0), 19.25, 1e-3);
  EXPECT_NEAR(json.number("latency_ms.p95", 0.0), 9.0, 1e-3);
}

TEST(Report, ExtractBaselineFlatAndRouterSchemas) {
  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parse_flat_json(
      R"({"throughput_rps": 12.5, "latency_ms": {"p50": 1, "p95": 9, "p99": 14}})",
      flat, error))
      << error;
  BaselineStats base = extract_baseline(flat);
  ASSERT_TRUE(base.ok);
  EXPECT_EQ(base.source_prefix, "");
  EXPECT_EQ(base.throughput_rps, 12.5);
  EXPECT_EQ(base.p95_ms, 9.0);

  FlatJson nested;
  ASSERT_TRUE(parse_flat_json(
      R"({"sharded": {"throughput_rps": 40, "latency_ms": {"p95": 3, "p99": 5}}})",
      nested, error))
      << error;
  BaselineStats sharded = extract_baseline(nested);
  ASSERT_TRUE(sharded.ok);
  EXPECT_EQ(sharded.source_prefix, "sharded.");
  EXPECT_EQ(sharded.throughput_rps, 40.0);
  EXPECT_EQ(sharded.p99_ms, 5.0);

  FlatJson junk;
  ASSERT_TRUE(parse_flat_json(R"({"unrelated": 1})", junk, error));
  EXPECT_FALSE(extract_baseline(junk).ok);
}

TEST(Report, CompareGateEdges) {
  BaselineStats base;
  base.ok = true;
  base.throughput_rps = 100.0;
  base.p95_ms = 50.0;
  base.p99_ms = 80.0;

  BenchReport current = sample_report();
  current.achieved_rps = 100.0;
  current.latency.p95 = 50.0;
  current.latency.p99 = 80.0;
  EXPECT_TRUE(compare_to_baseline(current, base, 0.25).pass);

  // Exactly at the limit passes (floor/ceiling, not strict bound).
  current.achieved_rps = 75.0;
  current.latency.p95 = 50.0 * 1.25 + kCompareLatencySlackMs;
  EXPECT_TRUE(compare_to_baseline(current, base, 0.25).pass);

  // A hair past either limit fails, and the verdict names the check.
  current.achieved_rps = 74.9;
  CompareResult slow = compare_to_baseline(current, base, 0.25);
  EXPECT_FALSE(slow.pass);
  EXPECT_NE(slow.describe().find("throughput_rps"), std::string::npos);

  current.achieved_rps = 100.0;
  current.latency.p95 = 50.0 * 1.25 + kCompareLatencySlackMs + 0.1;
  EXPECT_FALSE(compare_to_baseline(current, base, 0.25).pass);
}

TEST(Report, CompareSlackProtectsTinyBaselines) {
  // A 0.5 ms baseline with 10% tolerance would allow only 0.55 ms — pure
  // scheduler jitter. The absolute slack keeps the gate meaningful.
  BaselineStats base;
  base.ok = true;
  base.throughput_rps = 1000.0;
  base.p95_ms = 0.5;
  base.p99_ms = 0.8;

  BenchReport current = sample_report();
  current.achieved_rps = 1000.0;
  current.latency.p95 = 0.5 * 1.1 + 1.9;  // inside the 2 ms slack
  current.latency.p99 = 0.8;
  EXPECT_TRUE(compare_to_baseline(current, base, 0.1).pass);
}

// ---- SLO budgets -----------------------------------------------------------

TEST(Slo, BoundaryValuesPass) {
  SloBudget budget;
  budget.p95_ms = 9.0;
  budget.min_rps = 19.25;
  budget.max_error_rate = 1.0 / 91.0;

  BenchReport report = sample_report();  // p95 = 9.0, achieved = 19.25,
                                         // errors 1 of 91
  SloVerdict verdict = evaluate_slo(budget, report);
  EXPECT_TRUE(verdict.pass) << verdict.describe();
  EXPECT_EQ(verdict.checks.size(), 3u);  // only the set budgets appear
}

TEST(Slo, EachBudgetFailsIndependently) {
  BenchReport report = sample_report();

  SloBudget p95_only;
  p95_only.p95_ms = 8.9;  // report has 9.0
  SloVerdict verdict = evaluate_slo(p95_only, report);
  EXPECT_FALSE(verdict.pass);
  ASSERT_EQ(verdict.checks.size(), 1u);
  EXPECT_EQ(verdict.checks[0].name, "p95_ms");

  SloBudget rps_only;
  rps_only.min_rps = 19.3;  // report achieved 19.25
  EXPECT_FALSE(evaluate_slo(rps_only, report).pass);

  SloBudget zero_errors;
  zero_errors.max_error_rate = 0.0;  // report has 1 failure
  EXPECT_FALSE(evaluate_slo(zero_errors, report).pass);
}

TEST(Slo, EmptyBudgetAlwaysPasses) {
  SloVerdict verdict = evaluate_slo(SloBudget{}, sample_report());
  EXPECT_TRUE(verdict.pass);
  EXPECT_TRUE(verdict.checks.empty());
}

TEST(Slo, LoadsBudgetFromJsonFile) {
  std::string path = "test_slo_budget_tmp.json";
  ASSERT_TRUE(write_text_file(
      path,
      R"({"_note": "tight", "p95_ms": 12, "min_rps": 3, "max_error_rate": 0})"));
  SloBudget budget;
  std::string error;
  ASSERT_TRUE(load_slo_budget(path, budget, error)) << error;
  EXPECT_EQ(budget.p95_ms, 12.0);
  EXPECT_EQ(budget.min_rps, 3.0);
  EXPECT_EQ(budget.max_error_rate, 0.0);
  EXPECT_LE(budget.p50_ms, 0.0);  // unset stays unset
  std::remove(path.c_str());

  EXPECT_FALSE(load_slo_budget("does_not_exist.json", budget, error));
  EXPECT_FALSE(error.empty());
}

// Budget validation names the offending field so a CI failure reads as
// "p95_ms: must be a finite number", not a generic parse error.
TEST(Slo, ValidationErrorsNameTheField) {
  SloBudget budget;
  std::string error;

  EXPECT_FALSE(parse_slo_budget(R"({"p95_ms": 12, "wat": 1})", budget, error));
  EXPECT_NE(error.find("wat: unknown budget field"), std::string::npos)
      << error;
  EXPECT_NE(error.find("p50_ms p95_ms p99_ms min_rps max_error_rate"),
            std::string::npos)
      << error;

  EXPECT_FALSE(parse_slo_budget(R"({"p95_ms": "fast"})", budget, error));
  EXPECT_NE(error.find("p95_ms: expected a number, got a string"),
            std::string::npos)
      << error;

  EXPECT_FALSE(parse_slo_budget(R"({"min_rps": -3})", budget, error));
  EXPECT_NE(error.find("min_rps: must not be negative"), std::string::npos)
      << error;

  EXPECT_FALSE(parse_slo_budget(R"({"max_error_rate": 1.5})", budget, error));
  EXPECT_NE(error.find("max_error_rate:"), std::string::npos) << error;

  // Percentile ordering is cross-checked among the fields that are set.
  EXPECT_FALSE(
      parse_slo_budget(R"({"p50_ms": 900, "p95_ms": 100})", budget, error));
  EXPECT_NE(error.find("p50_ms: must not exceed p95_ms"), std::string::npos)
      << error;
  EXPECT_FALSE(
      parse_slo_budget(R"({"p95_ms": 900, "p99_ms": 100})", budget, error));
  EXPECT_NE(error.find("p95_ms: must not exceed p99_ms"), std::string::npos)
      << error;
}

TEST(Slo, ValidationAcceptsPartialBudgetsAndComments) {
  SloBudget budget;
  std::string error;
  // Underscore-prefixed keys are comments; absent fields stay unset.
  ASSERT_TRUE(parse_slo_budget(
      R"({"_note": "partial", "p99_ms": 50})", budget, error))
      << error;
  EXPECT_EQ(budget.p99_ms, 50.0);
  EXPECT_LE(budget.p50_ms, 0.0);
  EXPECT_LE(budget.p95_ms, 0.0);
  EXPECT_LT(budget.max_error_rate, 0.0);

  // p50 <= p99 with p95 absent is still checked — and passes here.
  ASSERT_TRUE(parse_slo_budget(
      R"({"p50_ms": 10, "p99_ms": 50})", budget, error))
      << error;
  EXPECT_FALSE(
      parse_slo_budget(R"({"p50_ms": 90, "p99_ms": 50})", budget, error));
  EXPECT_NE(error.find("p50_ms: must not exceed p99_ms"), std::string::npos)
      << error;

  // The file loader prefixes the path so multi-file CI logs stay readable.
  std::string path = "test_slo_invalid_tmp.json";
  ASSERT_TRUE(write_text_file(path, R"({"p95_ms": "slow"})"));
  EXPECT_FALSE(load_slo_budget(path, budget, error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("p95_ms:"), std::string::npos) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cosched
