// Tests for the online co-scheduling service (src/online) and the shared
// degradation-oracle cache (src/core/oracle_cache): deterministic replay,
// cached-vs-uncached equivalence, admission batching, and the service-level
// replan property (never worse than staying put).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/degradation_models.hpp"
#include "core/oracle_cache.hpp"
#include "online/scheduler.hpp"
#include "util/rng.hpp"

namespace cosched {
namespace {

// ------------------------------------------------------------ trace

TEST(Trace, GenerationIsDeterministic) {
  TraceSpec spec;
  spec.job_count = 40;
  spec.parallel_fraction = 0.25;
  spec.seed = 99;
  WorkloadTrace a = generate_trace(spec);
  WorkloadTrace b = generate_trace(spec);
  ASSERT_EQ(a.job_count(), b.job_count());
  for (std::int32_t i = 0; i < a.job_count(); ++i) {
    const TraceJob& x = a.jobs[static_cast<std::size_t>(i)];
    const TraceJob& y = b.jobs[static_cast<std::size_t>(i)];
    EXPECT_EQ(x.arrival_time, y.arrival_time);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.processes, y.processes);
    EXPECT_EQ(x.work, y.work);
    EXPECT_EQ(x.miss_rate, y.miss_rate);
    EXPECT_EQ(x.sensitivity, y.sensitivity);
  }
}

TEST(Trace, GenerationRespectsSpecRanges) {
  TraceSpec spec;
  spec.job_count = 200;
  spec.work_lo = 3.0;
  spec.work_hi = 9.0;
  spec.parallel_fraction = 0.3;
  spec.max_parallel_processes = 5;
  spec.seed = 7;
  WorkloadTrace t = generate_trace(spec);
  Real prev_arrival = 0.0;
  std::int32_t parallel = 0;
  for (const TraceJob& j : t.jobs) {
    EXPECT_GE(j.arrival_time, prev_arrival);  // sorted
    prev_arrival = j.arrival_time;
    EXPECT_GE(j.work, spec.work_lo);
    EXPECT_LE(j.work, spec.work_hi);
    EXPECT_GE(j.miss_rate, spec.miss_rate_lo);
    EXPECT_LE(j.miss_rate, spec.miss_rate_hi);
    if (j.kind == JobKind::ParallelNoComm) {
      ++parallel;
      EXPECT_GE(j.processes, 2);
      EXPECT_LE(j.processes, spec.max_parallel_processes);
    } else {
      EXPECT_EQ(j.processes, 1);
    }
  }
  // ~30% of 200 jobs; generous bounds, but catches a dead branch.
  EXPECT_GT(parallel, 30);
  EXPECT_LT(parallel, 90);
}

TEST(Trace, SaveLoadRoundTripsExactly) {
  TraceSpec spec;
  spec.job_count = 25;
  spec.parallel_fraction = 0.2;
  spec.seed = 13;
  WorkloadTrace t = generate_trace(spec);
  std::stringstream buf;
  save_trace(t, buf);
  WorkloadTrace back = load_trace(buf);
  ASSERT_EQ(back.job_count(), t.job_count());
  for (std::int32_t i = 0; i < t.job_count(); ++i) {
    const TraceJob& x = t.jobs[static_cast<std::size_t>(i)];
    const TraceJob& y = back.jobs[static_cast<std::size_t>(i)];
    EXPECT_EQ(x.arrival_time, y.arrival_time);  // %.17g: bit-exact
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.processes, y.processes);
    EXPECT_EQ(x.work, y.work);
    EXPECT_EQ(x.miss_rate, y.miss_rate);
    EXPECT_EQ(x.sensitivity, y.sensitivity);
  }
}

TEST(Trace, LoadRejectsMalformedInput) {
  std::stringstream bad_kind("0.0,job0,XX,1,10.0,0.4,0.7\n");
  EXPECT_THROW(load_trace(bad_kind), std::invalid_argument);
  std::stringstream missing_fields("0.0,job0,SE,1\n");
  EXPECT_THROW(load_trace(missing_fields), std::invalid_argument);
}

// ------------------------------------------------------------ events

TEST(EventQueue, OrdersByTimeThenPushSequence) {
  EventQueue q;
  q.push(1.0, EventKind::JobArrival, 10);
  q.push(0.5, EventKind::Replan, 20);
  q.push(1.0, EventKind::JobCompletion, 30);  // same time as the first push
  EXPECT_EQ(q.size(), 3u);
  Event e1 = q.pop();
  EXPECT_EQ(e1.payload, 20);
  Event e2 = q.pop();  // time tie: earlier push wins
  EXPECT_EQ(e2.payload, 10);
  Event e3 = q.pop();
  EXPECT_EQ(e3.payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(VirtualClockTest, RejectsTravelToThePast) {
  VirtualClock c;
  c.advance_to(2.0);
  EXPECT_EQ(c.now(), 2.0);
  c.advance_to(2.0);  // no-op is fine
  EXPECT_THROW(c.advance_to(1.0), ContractViolation);
}

// ------------------------------------------------------------ metrics

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  h.add(0.5);
  h.add(1.0);  // lands in <=1
  h.add(3.0);
  h.add(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_counts(),
            (std::vector<std::uint64_t>{2, 0, 1, 1}));
  EXPECT_NEAR(h.mean(), (0.5 + 1.0 + 3.0 + 100.0) / 4.0, 1e-12);
  EXPECT_EQ(h.max(), 100.0);
}

// ------------------------------------------------------------ admission

TEST(Admission, FifoAdmitsWholeJobsAndStopsAtFirstMisfit) {
  const std::vector<std::int32_t> sizes{1, 4, 2, 1};
  // 5 slots: job0 (1) + job1 (4) fit; job2 (2) does not -> stop, even
  // though job3 (1) would fit (strict FIFO, no skipping ahead).
  EXPECT_EQ(AdmissionPolicy::admit_fifo(sizes, 5), 2);
  EXPECT_EQ(AdmissionPolicy::admit_fifo(sizes, 0), 0);
  EXPECT_EQ(AdmissionPolicy::admit_fifo(sizes, 100), 4);
  // 3 slots: job0 fits, job1 (4) does not.
  EXPECT_EQ(AdmissionPolicy::admit_fifo(sizes, 3), 1);
}

TEST(Admission, EveryKFiresAtDepthK) {
  AdmissionOptions opt;
  opt.trigger = ReplanTrigger::EveryKArrivals;
  opt.every_k = 3;
  AdmissionPolicy policy(opt);
  AdmissionState s;
  s.running_processes = 4;  // fleet busy: idle shortcut does not apply
  s.free_slots = 4;
  s.pending_jobs = 2;
  EXPECT_FALSE(policy.should_replan(s));
  s.pending_jobs = 3;
  EXPECT_TRUE(policy.should_replan(s));
}

TEST(Admission, IdleFleetWithPendingWorkAlwaysFires) {
  AdmissionOptions opt;
  opt.trigger = ReplanTrigger::EveryKArrivals;
  opt.every_k = 10;
  AdmissionPolicy policy(opt);
  AdmissionState s;
  s.pending_jobs = 1;
  s.running_processes = 0;  // nothing running: waiting would idle the fleet
  s.free_slots = 8;
  EXPECT_TRUE(policy.should_replan(s));
}

TEST(Admission, ThresholdRespectsCooldown) {
  AdmissionOptions opt;
  opt.trigger = ReplanTrigger::DegradationThreshold;
  opt.degradation_threshold = 0.3;
  opt.min_replan_interval = 5.0;
  AdmissionPolicy policy(opt);
  AdmissionState s;
  s.running_processes = 6;
  s.running_mean_degradation = 0.5;  // above threshold
  s.last_replan_time = 10.0;
  s.now = 12.0;  // within cooldown
  EXPECT_FALSE(policy.should_replan(s));
  s.now = 15.5;  // cooldown elapsed
  EXPECT_TRUE(policy.should_replan(s));
  s.running_mean_degradation = 0.1;  // below threshold
  EXPECT_FALSE(policy.should_replan(s));
}

// ------------------------------------------------------- oracle cache

TEST(OracleCache, KeyDropsPaddingAndIgnoresCoOrder) {
  std::string a = DegradationCache::make_key(3, {5, 1, 2});
  std::string b = DegradationCache::make_key(3, {2, 5, 1});
  std::string c = DegradationCache::make_key(3, {2, 5, 1, -1, -1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);  // negative ids are inert padding
  EXPECT_NE(a, DegradationCache::make_key(4, {5, 1, 2}));
  EXPECT_NE(a, DegradationCache::make_key(3, {5, 1}));
}

TEST(OracleCache, InsertLookupAndStats) {
  DegradationCache cache(4);
  Real out = -1.0;
  EXPECT_FALSE(cache.lookup("k1", out));
  cache.insert("k1", 0.25);
  EXPECT_TRUE(cache.lookup("k1", out));
  EXPECT_EQ(out, 0.25);
  cache.insert("k1", 0.75);  // first value wins
  EXPECT_TRUE(cache.lookup("k1", out));
  EXPECT_EQ(out, 0.25);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

// Every (i, co) query through the cache must be bit-identical to the base
// model, cold and warm.
TEST(OracleCache, CachedModelMatchesBaseBitForBit) {
  Rng rng(41);
  auto base = SyntheticDegradationModel::random(8, rng);
  auto cache = std::make_shared<DegradationCache>();
  CachingDegradationModel cached(base, cache, {},
                                 BaseModelConcurrency::ConcurrentSafe);
  std::vector<std::vector<ProcessId>> co_sets = {
      {}, {1}, {1, 2}, {2, 1}, {1, 2, 3}, {4, 5, 6, 7}, {7, 6, 5, 4}};
  for (int pass = 0; pass < 2; ++pass) {  // pass 1 hits the warm cache
    for (ProcessId i = 0; i < 8; ++i) {
      for (const auto& co : co_sets) {
        if (std::find(co.begin(), co.end(), i) != co.end()) continue;
        EXPECT_EQ(cached.degradation(i, co), base->degradation(i, co))
            << "i=" << i << " pass=" << pass;
      }
    }
  }
  EXPECT_GT(cache->stats().hits, 0u);
}

// Two Problems with different local numberings of the same underlying
// processes share one cache through the stable-id remap: the second model
// must read the first model's entries and still return its own base's
// values bit for bit.
TEST(OracleCache, StableIdsShareEntriesAcrossRenumberings) {
  const std::vector<Real> rates{0.2, 0.7, 0.4, 0.55};
  const std::vector<Real> sens{0.5, 0.9, 0.6, 0.8};
  // Model B sees the same processes in reversed local order.
  const std::vector<ProcessId> perm{3, 2, 1, 0};
  std::vector<Real> rates_b(4), sens_b(4);
  for (std::size_t j = 0; j < 4; ++j) {
    rates_b[j] = rates[static_cast<std::size_t>(perm[j])];
    sens_b[j] = sens[static_cast<std::size_t>(perm[j])];
  }
  auto base_a = std::make_shared<SyntheticDegradationModel>(rates, sens);
  auto base_b = std::make_shared<SyntheticDegradationModel>(rates_b, sens_b);
  auto cache = std::make_shared<DegradationCache>();

  CachingDegradationModel a(base_a, cache, {0, 1, 2, 3},
                            BaseModelConcurrency::ConcurrentSafe);
  CachingDegradationModel b(base_b, cache, perm,
                            BaseModelConcurrency::ConcurrentSafe);

  // Warm the cache through A.
  (void)a.degradation(1, std::vector<ProcessId>{0, 2});
  (void)a.degradation(3, std::vector<ProcessId>{0});
  const auto warm = cache->stats();

  // B's local 2 is stable 1, co {3, 1} is stable {0, 2} -> same key.
  EXPECT_EQ(b.degradation(2, std::vector<ProcessId>{3, 1}),
            base_b->degradation(2, std::vector<ProcessId>{3, 1}));
  EXPECT_EQ(b.degradation(0, std::vector<ProcessId>{3}),
            base_b->degradation(0, std::vector<ProcessId>{3}));
  auto s = cache->stats();
  EXPECT_EQ(s.hits, warm.hits + 2);      // both queries were warm
  EXPECT_EQ(s.entries, warm.entries);    // nothing new inserted
}

TEST(OracleCache, ConcurrentHammerStaysConsistent) {
  Rng rng(43);
  auto base = SyntheticDegradationModel::random(12, rng);
  auto cache = std::make_shared<DegradationCache>(8);
  CachingDegradationModel cached(base, cache, {},
                                 BaseModelConcurrency::ConcurrentSafe);
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng local(static_cast<std::uint64_t>(100 + t));
      for (int iter = 0; iter < 2000; ++iter) {
        ProcessId i = static_cast<ProcessId>(local.uniform(12));
        std::vector<ProcessId> co;
        for (ProcessId p = 0; p < 12; ++p)
          if (p != i && local.uniform(3) == 0) co.push_back(p);
        if (cached.degradation(i, co) != base->degradation(i, co))
          ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  auto s = cache->stats();
  EXPECT_EQ(s.hits + s.misses, 4u * 2000u);
  EXPECT_GT(s.hits, 0u);
}

// ------------------------------------------------------------ service

OnlineSchedulerOptions small_service_options() {
  OnlineSchedulerOptions options;
  options.cores = 2;
  options.machines = 3;
  options.admission.every_k = 2;
  options.log_process_finish = true;
  return options;
}

WorkloadTrace small_trace(std::uint64_t seed, std::int32_t jobs = 16) {
  TraceSpec spec;
  spec.job_count = jobs;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = seed;
  return generate_trace(spec);
}

TEST(OnlineService, CompletesEveryJob) {
  WorkloadTrace trace = small_trace(1);
  OnlineScheduler service(small_service_options());
  service.run(trace);
  EXPECT_EQ(service.metrics().arrivals(),
            static_cast<std::uint64_t>(trace.job_count()));
  EXPECT_EQ(service.metrics().admissions(),
            static_cast<std::uint64_t>(trace.job_count()));
  EXPECT_EQ(service.metrics().completions(),
            static_cast<std::uint64_t>(trace.job_count()));
  // Fleet drained: no live processes left anywhere.
  for (const auto& m : service.placement()) EXPECT_TRUE(m.empty());
}

// The deterministic-replay acceptance test: two runs over the same trace
// leave byte-identical event logs and metric CSVs.
TEST(OnlineService, ReplayIsByteIdentical) {
  WorkloadTrace trace = small_trace(2);
  for (OnlineSolverKind solver :
       {OnlineSolverKind::HAStar, OnlineSolverKind::PgGreedy,
        OnlineSolverKind::Random}) {
    OnlineSchedulerOptions options = small_service_options();
    options.solver = solver;
    OnlineScheduler first(options);
    first.run(trace);
    OnlineScheduler second(options);
    second.run(trace);
    EXPECT_EQ(first.log().render_csv(), second.log().render_csv())
        << to_string(solver);
    EXPECT_EQ(first.metrics().render_deterministic_csv(),
              second.metrics().render_deterministic_csv())
        << to_string(solver);
  }
}

// Service-level replan property: no adopted placement is worse (combined
// objective) than staying put.
TEST(OnlineService, ReplansNeverWorseThanStaying) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    WorkloadTrace trace = small_trace(seed);
    OnlineSchedulerOptions options = small_service_options();
    options.migration_cost = 0.05;
    OnlineScheduler service(options);
    service.run(trace);
    ASSERT_GT(service.metrics().replans(), 0u);
    for (const ReplanRecord& r : service.metrics().replan_records()) {
      EXPECT_LE(r.combined, r.stay_combined + 1e-9)
          << "seed " << seed << " t=" << r.time;
      EXPECT_GE(r.migrations, 0);
    }
  }
}

TEST(OnlineService, PlacementRespectsCoreCapacity) {
  WorkloadTrace trace = small_trace(6, 10);
  OnlineSchedulerOptions options = small_service_options();
  options.admission.trigger = ReplanTrigger::Periodic;
  options.admission.period = 3.0;
  OnlineScheduler service(options);
  service.run(trace);
  // Capacity was never exceeded: every admission fit the free slots at its
  // replan, and each machine's live set is bounded by u at the end.
  for (const auto& m : service.placement())
    EXPECT_LE(m.size(), static_cast<std::size_t>(options.cores));
  EXPECT_EQ(service.metrics().completions(),
            static_cast<std::uint64_t>(trace.job_count()));
}

TEST(OnlineService, ThresholdTriggerAlsoDrainsTheQueue) {
  WorkloadTrace trace = small_trace(7);
  OnlineSchedulerOptions options = small_service_options();
  options.admission.trigger = ReplanTrigger::DegradationThreshold;
  options.admission.degradation_threshold = 0.25;
  options.admission.max_wait = 10.0;  // backstop carries the admission load
  OnlineScheduler service(options);
  service.run(trace);
  EXPECT_EQ(service.metrics().completions(),
            static_cast<std::uint64_t>(trace.job_count()));
  // The max-wait backstop bounds queue waits for every trigger family.
  EXPECT_LE(service.metrics().queue_wait().max(),
            options.admission.max_wait + 1e-9);
}

TEST(OnlineService, SharedOracleCacheGetsReuse) {
  WorkloadTrace trace = small_trace(8);
  OnlineScheduler service(small_service_options());
  service.run(trace);
  auto s = service.oracle_cache().stats();
  EXPECT_GT(s.entries, 0u);
  EXPECT_GT(s.hits, s.misses);  // replans re-query overlapping live sets
}

// ------------------------------------------------- open-world interface

// run(trace) is documented as exactly begin + submit* + finish; driving the
// incremental interface by hand — with arbitrary extra pump() calls thrown
// in — must leave byte-identical observables. This is what makes the RPC
// submission path equivalent to trace replay.
TEST(OnlineService, IncrementalInterfaceMatchesRunByteForByte) {
  WorkloadTrace trace = small_trace(9);
  OnlineSchedulerOptions options = small_service_options();

  OnlineScheduler batch(options);
  batch.run(trace);

  OnlineScheduler incremental(options);
  incremental.begin();
  std::size_t i = 0;
  for (const TraceJob& job : trace.jobs) {
    std::int64_t id = incremental.submit(job);
    EXPECT_EQ(id, static_cast<std::int64_t>(i++));
    // Redundant pumps at and before the arrival must be invisible.
    incremental.pump(job.arrival_time);
    incremental.pump(job.arrival_time * 0.5);
  }
  incremental.finish();

  EXPECT_EQ(batch.log().render_csv(), incremental.log().render_csv());
  EXPECT_EQ(batch.metrics().render_deterministic_csv(),
            incremental.metrics().render_deterministic_csv());
}

TEST(OnlineService, JobStatusTracksLifecycle) {
  OnlineScheduler service(small_service_options());
  service.begin();
  TraceJob job;
  job.name = "tracked";
  job.arrival_time = 1.0;
  job.work = 4.0;
  std::int64_t id = service.submit(job);
  EXPECT_EQ(service.job_status(id).phase, JobPhase::Pending);
  service.pump(1.0);  // arrival: idle fleet admits immediately
  JobStatusView running = service.job_status(id);
  EXPECT_EQ(running.phase, JobPhase::Running);
  ASSERT_EQ(running.procs.size(), 1u);
  EXPECT_GE(running.procs[0].machine, 0);
  EXPECT_EQ(running.procs[0].remaining_work, 4.0);
  service.finish();
  JobStatusView done = service.job_status(id);
  EXPECT_EQ(done.phase, JobPhase::Finished);
  EXPECT_GE(done.finish_time, done.admit_time);
  ServiceSnapshot snapshot = service.service_snapshot();
  EXPECT_EQ(snapshot.completions, 1u);
  EXPECT_EQ(snapshot.free_slots, service.total_cores());
}

// The admission max-wait backstop in plain trace replay: with a trigger
// that never fires on its own, a waiting job is force-admitted exactly
// max_wait after arrival.
TEST(OnlineService, MaxWaitBackstopFiresInTraceReplay) {
  OnlineSchedulerOptions options = small_service_options();
  options.admission.every_k = 100;  // the batch trigger never fills
  options.admission.max_wait = 5.0;

  WorkloadTrace trace;
  TraceJob hog;  // idle-fleet rule admits it instantly, then occupies a core
  hog.name = "hog";
  hog.arrival_time = 0.0;
  hog.work = 100.0;
  trace.jobs.push_back(hog);
  TraceJob waiter;  // nothing admits it but the backstop
  waiter.name = "waiter";
  waiter.arrival_time = 1.0;
  waiter.work = 2.0;
  trace.jobs.push_back(waiter);

  OnlineScheduler service(options);
  service.run(trace);
  JobStatusView status = service.job_status(1);
  EXPECT_EQ(status.phase, JobPhase::Finished);
  EXPECT_EQ(status.admit_time,
            waiter.arrival_time + options.admission.max_wait);
  EXPECT_EQ(service.metrics().completions(), 2u);
}

// ------------------------------------------------- cache compaction

// Epoch-based eviction keeps a long-lived service's cache bounded: over
// many completion epochs the resident entry count plateaus instead of
// growing with every job that ever ran.
TEST(OracleCache, CompactionPlateausResidentEntries) {
  OnlineSchedulerOptions options = small_service_options();
  options.cache_compaction_jobs = 4;
  OnlineScheduler service(options);
  service.begin();

  WorkloadTrace stream = small_trace(10, 64);
  std::size_t peak_early = 0;
  std::size_t last_wave = 0;
  std::size_t wave = 0;
  for (std::size_t start = 0; start < stream.jobs.size(); start += 8, ++wave) {
    Real horizon = 0.0;
    for (std::size_t j = start;
         j < std::min(start + 8, stream.jobs.size()); ++j) {
      service.submit(stream.jobs[j]);
      horizon = stream.jobs[j].arrival_time;
    }
    service.pump(horizon + 1000.0);  // complete the whole wave
    std::size_t entries =
        static_cast<std::size_t>(service.oracle_cache().stats().entries);
    if (wave < 3) peak_early = std::max(peak_early, entries);
    last_wave = entries;
  }
  service.finish();

  EXPECT_GT(service.oracle_cache().stats().evictions, 0u);
  // Plateau: after 8 waves the cache is no bigger than its early peak.
  EXPECT_LE(last_wave, peak_early);
  EXPECT_EQ(service.metrics().completions(), 64u);
}

TEST(OracleCache, EvictDeadDropsOnlyDeadEntries) {
  DegradationCachePtr cache = std::make_shared<DegradationCache>();
  // Entries over ids {1,2}, {2,3}, {7}: killing 3 must only drop {2,3}.
  cache->insert(DegradationCache::make_key(1, {2}), 0.25);
  cache->insert(DegradationCache::make_key(2, {3}), 0.5);
  cache->insert(DegradationCache::make_key(7, {}), 0.75);
  ASSERT_EQ(cache->stats().entries, 3u);

  std::vector<ProcessId> live = {1, 2, 7};
  EXPECT_EQ(cache->evict_dead(live), 1u);
  EXPECT_EQ(cache->stats().entries, 2u);
  EXPECT_EQ(cache->stats().evictions, 1u);
  Real value = 0.0;
  EXPECT_TRUE(cache->lookup(DegradationCache::make_key(1, {2}), value));
  EXPECT_EQ(value, 0.25);
  EXPECT_FALSE(cache->lookup(DegradationCache::make_key(2, {3}), value));
  EXPECT_TRUE(cache->lookup(DegradationCache::make_key(7, {}), value));
}

// ------------------------------------------------- metrics CSV writer

TEST(Metrics, WriteCsvsCreatesMissingDirectories) {
  WorkloadTrace trace = small_trace(11, 6);
  OnlineScheduler service(small_service_options());
  service.run(trace);

  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() /
                  ("cosched_metrics_test_" + std::to_string(::getpid()));
  fs::path dir = root / "deep" / "nested";
  fs::remove_all(root);
  ASSERT_FALSE(fs::exists(dir));

  std::vector<std::string> paths =
      service.metrics().write_csvs(dir.string(), "svc");
  ASSERT_EQ(paths.size(), 3u);  // summary, histograms, replans
  for (const std::string& path : paths) {
    EXPECT_TRUE(fs::exists(path)) << path;
    std::ifstream in(path);
    std::string first_line;
    ASSERT_TRUE(std::getline(in, first_line)) << path;
    EXPECT_NE(first_line.find(','), std::string::npos);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace cosched
