// Tests for the continuous profiler (src/obs/profiler): deterministic
// accumulation of the merged cross-thread wall-time tree, collapsed-stack
// rendering for flamegraph tooling, the runtime switch, reset semantics,
// and the acceptance pin — replaying a workload under the global profiler
// shows replan.fresh_solve owning the majority of online.replan wall time
// (the HA* solve is the hot phase; /debug/profile must show that shape).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "online/scheduler.hpp"
#include "online/trace.hpp"

namespace cosched {
namespace {

std::map<std::string, Profiler::NodeView> by_path(const Profiler& profiler) {
  std::map<std::string, Profiler::NodeView> out;
  for (const Profiler::NodeView& node : profiler.snapshot())
    out[node.path] = node;
  return out;
}

TEST(Profiler, MergedTreeFoldsThreadsByPath) {
  Profiler profiler;  // private instance: fully deterministic synthetic times
  profiler.enter("online.replan");
  profiler.enter("replan.fresh_solve");
  profiler.leave(700);
  profiler.enter("replan.commit");
  profiler.leave(100);
  profiler.leave(1000);
  profiler.enter("online.replan");
  profiler.enter("replan.fresh_solve");
  profiler.leave(800);
  profiler.leave(800);

  // A second thread's tree folds into the same paths at snapshot time.
  std::thread worker([&] {
    profiler.enter("online.replan");
    profiler.enter("replan.fresh_solve");
    profiler.leave(200);
    profiler.leave(200);
  });
  worker.join();

  std::map<std::string, Profiler::NodeView> nodes = by_path(profiler);
  ASSERT_EQ(nodes.count("online.replan"), 1u);
  EXPECT_EQ(nodes["online.replan"].count, 3u);
  EXPECT_EQ(nodes["online.replan"].total_ns, 2000u);
  EXPECT_EQ(nodes["online.replan"].depth, 0);
  // self = total minus direct children (1700 solve + 100 commit).
  EXPECT_EQ(nodes["online.replan"].self_ns, 200u);
  ASSERT_EQ(nodes.count("online.replan;replan.fresh_solve"), 1u);
  EXPECT_EQ(nodes["online.replan;replan.fresh_solve"].count, 3u);
  EXPECT_EQ(nodes["online.replan;replan.fresh_solve"].total_ns, 1700u);
  EXPECT_EQ(nodes["online.replan;replan.fresh_solve"].depth, 1);
  EXPECT_EQ(nodes["online.replan;replan.commit"].total_ns, 100u);
}

TEST(Profiler, CollapsedStackIsFlamegraphReady) {
  Profiler profiler;
  profiler.enter("serve");
  profiler.enter("decode");
  profiler.leave(2500);
  profiler.leave(4000);
  // One "path self_microseconds" line per visited node, parents first,
  // siblings sorted — byte-stable for a fixed enter/leave sequence.
  EXPECT_EQ(profiler.render_collapsed(), "serve 1\nserve;decode 2\n");

  std::string text = profiler.render_text();
  EXPECT_NE(text.find("serve count=1 total_ms=0.004 self_ms=0.002"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("  decode count=1"), std::string::npos) << text;
}

TEST(Profiler, ResetZeroesCountsButKeepsTheTreeUsable) {
  Profiler profiler;
  profiler.enter("phase");
  profiler.leave(5000);
  ASSERT_NE(profiler.render_collapsed(), "");
  profiler.reset();
  // Zeroed nodes disappear from the collapsed view (flamegraphs of an idle
  // window stay empty instead of full of stale paths)...
  EXPECT_EQ(profiler.render_collapsed(), "");
  // ...and the structure still accumulates fresh samples.
  profiler.enter("phase");
  profiler.leave(3000);
  EXPECT_EQ(profiler.render_collapsed(), "phase 3\n");
}

TEST(Profiler, RuntimeSwitchGatesTheMacroLayer) {
  Profiler& profiler = Profiler::global();
  profiler.set_enabled(false);
  profiler.reset();
  { COSCHED_PROFILE_PHASE(off_phase, "never.recorded"); }
  EXPECT_EQ(profiler.render_collapsed().find("never.recorded"),
            std::string::npos);

  profiler.set_enabled(true);
  { COSCHED_PROFILE_PHASE(on_phase, "test.phase"); }
  profiler.set_enabled(false);
  std::map<std::string, Profiler::NodeView> nodes = by_path(profiler);
  ASSERT_EQ(nodes.count("test.phase"), 1u);
  EXPECT_EQ(nodes["test.phase"].count, 1u);
  profiler.reset();
}

// The acceptance pin behind /debug/profile: on a replayed workload the
// fresh solve is where replan time goes — the profile of a loaded server
// must show replan.fresh_solve owning the majority of online.replan wall
// time, with the solver's own phases nested beneath it.
TEST(Profiler, FreshSolveOwnsTheMajorityOfReplanTime) {
  Profiler& profiler = Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);

  // Sized so the HA* solve robustly dominates the fixed per-replan
  // bookkeeping even on slow virtualized clocks: more machines and
  // processes grow the solve superlinearly while the per-replan
  // overhead (admission, journal, commit) stays roughly constant.
  TraceSpec spec;
  spec.job_count = 24;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 8.0;
  spec.work_hi = 24.0;
  spec.parallel_fraction = 0.4;
  spec.max_parallel_processes = 4;
  spec.seed = 11;
  OnlineSchedulerOptions options;
  options.cores = 4;
  options.machines = 4;
  options.admission.every_k = 2;
  options.solver = OnlineSolverKind::HAStar;
  options.log_process_finish = false;
  OnlineScheduler service(options);
  service.run(generate_trace(spec));
  profiler.set_enabled(false);

  std::map<std::string, Profiler::NodeView> nodes = by_path(profiler);
  ASSERT_EQ(nodes.count("online.replan"), 1u) << profiler.render_text();
  ASSERT_EQ(nodes.count("online.replan;replan.fresh_solve"), 1u)
      << profiler.render_text();
  const Profiler::NodeView& replan = nodes["online.replan"];
  const Profiler::NodeView& solve = nodes["online.replan;replan.fresh_solve"];
  EXPECT_GT(replan.count, 0u);
  EXPECT_GT(solve.count, 0u);
  EXPECT_GE(replan.count, solve.count);
  EXPECT_GT(replan.total_ns, 0u);
  EXPECT_GT(solve.total_ns * 2, replan.total_ns) << profiler.render_text();
  // The solver's own phase sits inside the fresh solve.
  EXPECT_EQ(nodes.count("online.replan;replan.fresh_solve;astar.search"), 1u)
      << profiler.render_text();

  // The collapsed render carries the full paths flamegraph.pl folds.
  std::string collapsed = profiler.render_collapsed();
  EXPECT_NE(collapsed.find("online.replan "), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("online.replan;replan.fresh_solve"),
            std::string::npos)
      << collapsed;
  profiler.reset();
}

}  // namespace
}  // namespace cosched
