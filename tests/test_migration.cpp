// Tests for the migration extension (the paper's future-work direction):
// Hungarian assignment, minimum-migration alignment, replanning.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "astar/search.hpp"
#include "baseline/random_schedule.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "vm/hungarian.hpp"
#include "vm/migration.hpp"

namespace cosched {
namespace {

using testhelpers::random_serial_problem;

// -------------------------------------------------------------- Hungarian

Real assignment_cost(const std::vector<std::vector<Real>>& cost,
                     const std::vector<std::int32_t>& a) {
  Real total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    total += cost[i][static_cast<std::size_t>(a[i])];
  return total;
}

TEST(Hungarian, SolvesHandComputedInstance) {
  // Classic 3x3: optimum assigns 0->1, 1->0, 2->2 with cost 1+2+3 = 6.
  std::vector<std::vector<Real>> cost{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  auto a = solve_assignment_min(cost);
  EXPECT_NEAR(assignment_cost(cost, a), 5.0, 1e-12);  // 1 + 2 + 2
}

TEST(Hungarian, AssignmentIsAPermutation) {
  Rng rng(17);
  std::vector<std::vector<Real>> cost(6, std::vector<Real>(6));
  for (auto& row : cost)
    for (auto& c : row) c = rng.uniform_real(0.0, 10.0);
  auto a = solve_assignment_min(cost);
  std::vector<std::int32_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (std::int32_t j = 0; j < 6; ++j) EXPECT_EQ(sorted[j], j);
}

TEST(Hungarian, MatchesBruteForceOnRandomMatrices) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(4);  // 2..5
    std::vector<std::vector<Real>> cost(n, std::vector<Real>(n));
    for (auto& row : cost)
      for (auto& c : row) c = rng.uniform_real(-5.0, 5.0);
    auto a = solve_assignment_min(cost);
    // Brute force over permutations.
    std::vector<std::int32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    Real best = kInfinity;
    do {
      best = std::min(best, assignment_cost(cost, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(assignment_cost(cost, a), best, 1e-9) << "trial " << trial;
  }
}

TEST(Hungarian, MaxVariantMaximizes) {
  std::vector<std::vector<Real>> weight{{1, 9}, {8, 2}};
  auto a = solve_assignment_max(weight);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
}

// -------------------------------------------------------- min migrations

TEST(Migration, IdenticalPlacementNeedsNoMoves) {
  Solution s;
  s.machines = {{0, 1}, {2, 3}, {4, 5}};
  EXPECT_EQ(min_migrations(s, s), 0);
}

TEST(Migration, MachineRelabelingIsFree) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1}, {2, 3}, {4, 5}};
  fresh.machines = {{4, 5}, {0, 1}, {2, 3}};  // same groups, shuffled
  EXPECT_EQ(min_migrations(old_p, fresh), 0);
  Solution aligned = align_to_placement(old_p, fresh);
  EXPECT_EQ(aligned.machines, old_p.machines);
}

TEST(Migration, SingleSwapCostsTwoMoves) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1}, {2, 3}};
  fresh.machines = {{0, 3}, {2, 1}};
  EXPECT_EQ(min_migrations(old_p, fresh), 2);
}

TEST(Migration, AlignmentPicksMaxOverlap) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  fresh.machines = {{4, 5, 6, 0}, {1, 2, 3, 7}};
  // Group {1,2,3,7} overlaps old machine 0 by 3; {4,5,6,0} overlaps old
  // machine 1 by 3 -> 2 moves (0 and 7 swap homes).
  EXPECT_EQ(min_migrations(old_p, fresh), 2);
  Solution aligned = align_to_placement(old_p, fresh);
  EXPECT_EQ(aligned.machines[0], (std::vector<ProcessId>{1, 2, 3, 7}));
  EXPECT_EQ(aligned.machines[1], (std::vector<ProcessId>{0, 4, 5, 6}));
}

// ---------------------------------------------------- weighted migrations

TEST(WeightedMigration, AllOnesMatchesUnweightedCount) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  fresh.machines = {{4, 5, 6, 0}, {1, 2, 3, 7}};
  std::vector<Real> ones(8, 1.0);
  EXPECT_NEAR(weighted_migrations(old_p, fresh, ones),
              static_cast<Real>(min_migrations(old_p, fresh)), 1e-12);
}

TEST(WeightedMigration, ZeroWeightProcessesMoveFree) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1}, {2, 3}};
  fresh.machines = {{0, 3}, {2, 1}};  // swaps 1 and 3
  std::vector<Real> w{1.0, 0.0, 1.0, 0.0};
  // Only processes 1 and 3 move, and both are free.
  EXPECT_NEAR(weighted_migrations(old_p, fresh, w), 0.0, 1e-12);
  EXPECT_EQ(min_migrations(old_p, fresh), 2);
}

TEST(WeightedMigration, AlignmentFollowsTheWeightedOverlap) {
  Solution old_p, fresh;
  old_p.machines = {{0, 1}, {2, 3}};
  // Each fresh group has one process from each old machine: the unweighted
  // overlap is a tie, so the weights decide which group inherits which
  // machine identity.
  fresh.machines = {{1, 2}, {0, 3}};
  std::vector<Real> w{0.0, 0.0, 5.0, 0.0};
  Solution aligned = align_to_placement(old_p, fresh, w);
  // Process 2 (the only weighty one) must stay on old machine 1.
  EXPECT_EQ(aligned.machines[1], (std::vector<ProcessId>{1, 2}));
  EXPECT_EQ(aligned.machines[0], (std::vector<ProcessId>{0, 3}));
}

TEST(WeightedMigration, ReplanChargesOnlyWeightedMoves) {
  Problem p = random_serial_problem(12, 4, 71);
  Rng rng(9);
  Solution current = solve_random(p, rng);
  ReplanOptions opt;
  opt.migration_cost = 0.1;
  // Half the processes relocate free, as a replan treats newly admitted
  // jobs in the online service.
  opt.move_weight.assign(static_cast<std::size_t>(p.n()), 1.0);
  for (std::int32_t i = 0; i < p.n(); i += 2)
    opt.move_weight[static_cast<std::size_t>(i)] = 0.0;
  auto r = replan_with_migrations(p, current, opt);
  validate_solution(p, r.placement);
  EXPECT_NEAR(r.combined, r.degradation + r.migration_charge, 1e-12);
  // The charge counts only weight-1 movers; `migrations` counts the same
  // processes, so charge = cost * migrations here.
  EXPECT_NEAR(r.migration_charge, opt.migration_cost * r.migrations, 1e-9);
  Real stay = evaluate_solution(p, current).total;
  EXPECT_LE(r.combined, stay + 1e-9);
}

TEST(WeightedMigration, PrecomputedFreshCandidateIsUsed) {
  Problem p = random_serial_problem(12, 4, 72);
  Rng rng(11);
  Solution current = solve_random(p, rng);
  auto ha = solve_hastar(p);
  ASSERT_TRUE(ha.found);
  ReplanOptions opt;
  opt.migration_cost = 0.0;
  opt.max_passes = 0;  // no local search: the fresh candidate must carry
  auto with_fresh = replan_with_migrations(p, current, &ha.solution, opt);
  Real ha_obj = evaluate_solution(p, ha.solution).total;
  EXPECT_NEAR(with_fresh.degradation, ha_obj, 1e-9);
  // Without a candidate and without passes, the best available is staying.
  auto without = replan_with_migrations(p, current, nullptr, opt);
  EXPECT_NEAR(without.degradation, evaluate_solution(p, current).total, 1e-9);
  EXPECT_EQ(without.migrations, 0);
}

// --------------------------------------------------------------- replan

TEST(Replan, HugeMigrationCostPinsThePlacement) {
  Problem p = random_serial_problem(12, 4, 61);
  Rng rng(4);
  Solution current = solve_random(p, rng);
  ReplanOptions opt;
  opt.migration_cost = 1e6;
  auto r = replan_with_migrations(p, current, opt);
  EXPECT_EQ(r.migrations, 0);
  validate_solution(p, r.placement);
  EXPECT_NEAR(r.degradation, evaluate_solution(p, current).total, 1e-9);
}

TEST(Replan, ZeroMigrationCostReachesSchedulerQuality) {
  Problem p = random_serial_problem(16, 4, 62);
  Rng rng(5);
  Solution current = solve_random(p, rng);
  ReplanOptions opt;
  opt.migration_cost = 0.0;
  auto r = replan_with_migrations(p, current, opt);
  validate_solution(p, r.placement);
  auto ha = solve_hastar(p);
  ASSERT_TRUE(ha.found);
  Real ha_obj = evaluate_solution(p, ha.solution).total;
  EXPECT_LE(r.degradation, ha_obj + 1e-9);  // at least as good as fresh HA*
}

TEST(Replan, NeverWorseThanStaying) {
  for (std::uint64_t seed : {63u, 64u, 65u}) {
    Problem p = random_serial_problem(12, 4, seed);
    Rng rng(seed);
    Solution current = solve_random(p, rng);
    Real stay = evaluate_solution(p, current).total;
    ReplanOptions opt;
    opt.migration_cost = 0.02;
    auto r = replan_with_migrations(p, current, opt);
    validate_solution(p, r.placement);
    EXPECT_LE(r.combined, stay + 1e-9) << "seed " << seed;
    EXPECT_NEAR(r.combined,
                r.degradation + opt.migration_cost * r.migrations, 1e-12);
  }
}

TEST(Replan, MigrationCountShrinksAsCostGrows) {
  Problem p = random_serial_problem(16, 4, 66);
  Rng rng(7);
  Solution current = solve_random(p, rng);
  std::int32_t prev_migrations = p.n() + 1;
  Real prev_degradation = -1.0;
  for (Real cost : {0.0, 0.02, 0.2, 5.0}) {
    ReplanOptions opt;
    opt.migration_cost = cost;
    auto r = replan_with_migrations(p, current, opt);
    // Monotone trade-off: pricier moves -> fewer (or equal) migrations and
    // no better degradation.
    EXPECT_LE(r.migrations, prev_migrations) << "cost " << cost;
    if (prev_degradation >= 0.0)
      EXPECT_GE(r.degradation + 1e-9, prev_degradation) << "cost " << cost;
    prev_migrations = r.migrations;
    prev_degradation = r.degradation;
  }
}

}  // namespace
}  // namespace cosched
