// TailSampler: policy decisions, window eviction, determinism, accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/tail_sampler.hpp"

namespace cosched {
namespace {

CompletedSpan span_of(const std::string& name, std::uint64_t trace_id,
                      double duration_us, bool error = false) {
  CompletedSpan s;
  s.name = name;
  s.trace_id = trace_id;
  s.duration_us = duration_us;
  s.error = error;
  return s;
}

TailPolicy latency_policy(const std::string& name, const std::string& prefix,
                          double min_us) {
  TailPolicy p;
  p.name = name;
  p.span_prefix = prefix;
  p.min_duration_us = min_us;
  return p;
}

TEST(TailSampler, InactiveUntilConfiguredAndDeactivatedByEmptyPolicies) {
  TailSampler sampler;
  EXPECT_FALSE(sampler.active());
  EXPECT_EQ(sampler.mode_label(), "");

  sampler.configure({latency_policy("slow", "", 100.0)});
  EXPECT_TRUE(sampler.active());
  EXPECT_EQ(sampler.mode_label(), "tail(slow)");

  sampler.configure({});
  EXPECT_FALSE(sampler.active());
  EXPECT_EQ(sampler.mode_label(), "");
}

TEST(TailSampler, LatencyThresholdKeepsImmediatelyAndSeenEqualsKept) {
  TailSampler sampler;
  sampler.configure({latency_policy("slow-replans", "online.replan", 500.0)});

  EXPECT_TRUE(sampler.observe(span_of("online.replan", 1, 750.0)));
  EXPECT_TRUE(sampler.observe(span_of("online.replan", 2, 500.0)));  // at ==
  EXPECT_FALSE(sampler.observe(span_of("online.replan", 3, 499.9)));
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 4, 9999.0)));  // prefix

  TailSamplerStats stats = sampler.stats();
  EXPECT_EQ(stats.considered, 4u);
  EXPECT_EQ(stats.kept_latency, 2u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.kept() + stats.dropped, stats.considered);

  std::vector<TailPolicyStats> per_policy = sampler.policy_stats();
  ASSERT_EQ(per_policy.size(), 1u);
  EXPECT_EQ(per_policy[0].matched, 3u);
  EXPECT_EQ(per_policy[0].over_threshold_seen, 2u);
  // Structural invariant: threshold keeps are immediate, so every
  // above-threshold span is retained — the soak's 100%-survival check.
  EXPECT_EQ(per_policy[0].over_threshold_kept,
            per_policy[0].over_threshold_seen);

  EXPECT_TRUE(sampler.trace_retained(1));
  EXPECT_TRUE(sampler.trace_retained(2));
  EXPECT_FALSE(sampler.trace_retained(3));
  EXPECT_FALSE(sampler.trace_retained(0));
}

TEST(TailSampler, TopKWindowKeepsKSlowestWithArrivalOrderTiebreak) {
  TailSampler sampler;
  TailPolicy top;
  top.name = "top2";
  top.span_prefix = "rpc.";
  top.top_k = 2;
  TailSamplerOptions options;
  options.window_spans = 4;
  sampler.configure({top}, options);

  // Window of 4: durations 10, 40, 40, 20 — top-2 slowest are the two 40s;
  // the tie resolves by arrival order (both kept here, deterministically).
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 11, 10.0)));
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 12, 40.0)));
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 13, 40.0)));
  EXPECT_EQ(sampler.pending(), 3u);
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 14, 20.0)));

  // The fourth observe filled the window: evaluated and cleared.
  EXPECT_EQ(sampler.pending(), 0u);
  TailSamplerStats stats = sampler.stats();
  EXPECT_EQ(stats.windows_evaluated, 1u);
  EXPECT_EQ(stats.kept_topk, 2u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_TRUE(sampler.trace_retained(12));
  EXPECT_TRUE(sampler.trace_retained(13));
  EXPECT_FALSE(sampler.trace_retained(11));
  EXPECT_FALSE(sampler.trace_retained(14));

  // Determinism: an identical observe() sequence on a fresh sampler makes
  // identical keep/drop decisions (no clock reads, no randomness).
  TailSampler replay;
  replay.configure({top}, options);
  for (std::uint64_t id : {11, 12, 13, 14})
    replay.observe(span_of("rpc.request", id,
                           id == 12 || id == 13 ? 40.0
                           : id == 11           ? 10.0
                                                : 20.0));
  std::vector<RetainedSpan> a = sampler.retained_snapshot();
  std::vector<RetainedSpan> b = replay.retained_snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].span.trace_id, b[i].span.trace_id);
    EXPECT_EQ(a[i].reason, b[i].reason);
    EXPECT_EQ(a[i].order, b[i].order);
  }
}

TEST(TailSampler, FlushResolvesAPartialWindow) {
  TailSampler sampler;
  TailPolicy top;
  top.name = "top1";
  top.top_k = 1;
  TailSamplerOptions options;
  options.window_spans = 64;
  sampler.configure({top}, options);

  sampler.observe(span_of("a", 1, 5.0));
  sampler.observe(span_of("b", 2, 50.0));
  sampler.observe(span_of("c", 3, 15.0));
  EXPECT_EQ(sampler.pending(), 3u);

  sampler.flush();
  EXPECT_EQ(sampler.pending(), 0u);
  EXPECT_TRUE(sampler.trace_retained(2));
  EXPECT_FALSE(sampler.trace_retained(1));
  EXPECT_EQ(sampler.stats().kept_topk, 1u);
  EXPECT_EQ(sampler.stats().dropped, 2u);
}

TEST(TailSampler, ErrorAndAlwaysKeepPrecedence) {
  TailSampler sampler;
  TailPolicy errors;
  errors.name = "errors";
  errors.keep_errors = true;
  TailPolicy everything;
  everything.name = "all-replans";
  everything.span_prefix = "online.replan";
  everything.always_keep = true;
  sampler.configure({errors, everything});

  EXPECT_TRUE(sampler.observe(span_of("rpc.request", 1, 1.0, true)));
  EXPECT_TRUE(sampler.observe(span_of("online.replan", 2, 1.0)));
  EXPECT_FALSE(sampler.observe(span_of("rpc.request", 3, 1.0)));

  TailSamplerStats stats = sampler.stats();
  EXPECT_EQ(stats.kept_error, 1u);
  EXPECT_EQ(stats.kept_always, 1u);
  EXPECT_EQ(stats.dropped, 1u);

  std::vector<RetainedSpan> kept = sampler.retained_snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].reason, TailKeepReason::Error);
  EXPECT_EQ(kept[0].policy, "errors");
  EXPECT_EQ(kept[1].reason, TailKeepReason::Always);
  EXPECT_EQ(kept[1].policy, "all-replans");
}

TEST(TailSampler, RetainedRingEvictsOldestWithAccounting) {
  TailSampler sampler;
  TailPolicy all;
  all.name = "all";
  all.always_keep = true;
  TailSamplerOptions options;
  options.max_retained_spans = 3;
  options.max_retained_traces = 3;
  sampler.configure({all}, options);

  for (std::uint64_t id = 1; id <= 5; ++id)
    EXPECT_TRUE(sampler.observe(span_of("x", id, 1.0)));

  EXPECT_EQ(sampler.retained(), 3u);
  EXPECT_EQ(sampler.stats().retained_evicted, 2u);
  std::vector<RetainedSpan> kept = sampler.retained_snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front().span.trace_id, 3u);  // oldest two evicted
  EXPECT_EQ(kept.back().span.trace_id, 5u);
  // The bounded trace-id set follows the same FIFO.
  EXPECT_FALSE(sampler.trace_retained(1));
  EXPECT_TRUE(sampler.trace_retained(5));
}

TEST(TailSampler, PendingWindowNeverExceedsItsCapacity) {
  TailSampler sampler;
  TailPolicy top;
  top.name = "top1";
  top.top_k = 1;
  TailSamplerOptions options;
  options.window_spans = 8;
  sampler.configure({top}, options);

  for (std::uint64_t id = 1; id <= 100; ++id) {
    sampler.observe(span_of("x", id, static_cast<double>(id)));
    EXPECT_LE(sampler.pending(), options.window_spans);
  }
  // 100 spans = 12 full windows evaluated, 4 still parked.
  EXPECT_EQ(sampler.stats().windows_evaluated, 12u);
  EXPECT_EQ(sampler.pending(), 4u);
  TailSamplerStats stats = sampler.stats();
  EXPECT_EQ(stats.considered,
            stats.kept() + stats.dropped + sampler.pending());
}

TEST(TailSampler, FirstMatchingPolicyDecidesAndLabelListsAll) {
  TailSampler sampler;
  sampler.configure({latency_policy("fast-bar", "bar", 10.0),
                     latency_policy("slow-all", "", 100.0)});
  EXPECT_EQ(sampler.mode_label(), "tail(fast-bar,slow-all)");
  std::vector<std::string> names = sampler.policy_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fast-bar");
  EXPECT_EQ(names[1], "slow-all");

  // 50 us "bar" span: over fast-bar's threshold, under slow-all's — kept,
  // credited to the deciding policy only.
  EXPECT_TRUE(sampler.observe(span_of("bar.baz", 7, 50.0)));
  std::vector<TailPolicyStats> per_policy = sampler.policy_stats();
  ASSERT_EQ(per_policy.size(), 2u);
  EXPECT_EQ(per_policy[0].kept, 1u);
  EXPECT_EQ(per_policy[0].over_threshold_kept, 1u);
  EXPECT_EQ(per_policy[1].matched, 1u);
  EXPECT_EQ(per_policy[1].over_threshold_seen, 0u);

  std::vector<RetainedSpan> kept = sampler.retained_snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].policy, "fast-bar");
  EXPECT_EQ(kept[0].reason, TailKeepReason::Latency);
}

TEST(TailSampler, ResetClearsStateButKeepsPolicies) {
  TailSampler sampler;
  sampler.configure({latency_policy("slow", "", 1.0)});
  sampler.observe(span_of("x", 9, 10.0));
  ASSERT_TRUE(sampler.trace_retained(9));

  sampler.reset();
  EXPECT_TRUE(sampler.active());
  EXPECT_FALSE(sampler.trace_retained(9));
  EXPECT_EQ(sampler.retained(), 0u);
  EXPECT_EQ(sampler.stats().considered, 0u);
  EXPECT_TRUE(sampler.observe(span_of("x", 10, 10.0)));  // still armed
}

}  // namespace
}  // namespace cosched
