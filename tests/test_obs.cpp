// Tests for the observability layer (src/obs): the relocated Histogram's
// invalid-sample accounting, quantiles and merging; Tracer span nesting,
// thread-merge determinism and the Chrome trace-event exporter; the metrics
// registry's Prometheus round-trip; cache counters against a hand-computed
// sequence; and the acceptance criterion — an HA*-backed replan traced end
// to end shows the admission -> fresh_solve -> alignment -> commit
// hierarchy with non-zero expansion counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/oracle_cache.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "online/journal.hpp"
#include "online/scheduler.hpp"

namespace cosched {
namespace {

// ------------------------------------------------------------ histogram

TEST(ObsHistogram, InvalidSamplesAreDroppedAndCounted) {
  Histogram h({1.0, 2.0});
  h.add(0.5);
  h.add(std::numeric_limits<Real>::quiet_NaN());
  h.add(-3.0);
  h.add(1.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.invalid(), 2u);
  EXPECT_NEAR(h.sum(), 2.0, 1e-12);  // rejected samples never touch sum
  EXPECT_EQ(h.max(), 1.5);
  EXPECT_NE(h.summary().find("invalid:2"), std::string::npos);

  Histogram clean({1.0});
  clean.add(0.5);
  EXPECT_EQ(clean.summary().find("invalid"), std::string::npos);
}

TEST(ObsHistogram, QuantileInterpolatesWithinBuckets) {
  Histogram empty({1.0});
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  Histogram h({2.0, 4.0});
  for (Real x : {1.0, 2.0, 3.0, 4.0}) h.add(x);
  EXPECT_NEAR(h.quantile(0.25), 1.0, 1e-12);  // halfway into [0, 2]
  EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-12);
  EXPECT_NEAR(h.quantile(1.0), 4.0, 1e-12);
  // Monotone in q.
  Real prev = 0.0;
  for (Real q = 0.0; q <= 1.0; q += 0.05) {
    Real v = h.quantile(q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }

  // Overflow samples are credited at the observed max.
  Histogram overflow({1.0});
  overflow.add(10.0);
  EXPECT_EQ(overflow.quantile(0.99), 10.0);
}

// Degenerate shapes the alerting TSDB leans on: an empty histogram answers
// 0 for every q, a single sample answers (an interpolation of) itself, and
// an all-overflow histogram pins every quantile to the observed max rather
// than inventing a value beyond the widest finite edge.
TEST(ObsHistogram, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  for (Real q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(empty.quantile(q), 0.0);

  // One in-range sample: the bucket's upper edge is capped at the observed
  // max, so every quantile lands between the bucket's lower edge and the
  // sample itself — never an invented value above what was seen.
  Histogram single({1.0, 2.0});
  single.add(1.5);
  for (Real q : {0.01, 0.5, 0.99, 1.0}) {
    Real v = single.quantile(q);
    EXPECT_GE(v, 1.0 - 1e-12) << q;
    EXPECT_LE(v, 1.5 + 1e-12) << q;
  }
  EXPECT_NEAR(single.quantile(1.0), 1.5, 1e-12);

  // Every sample past the widest finite edge: quantiles report the observed
  // max, and stay monotone.
  Histogram overflow({1.0, 2.0});
  overflow.add(50.0);
  overflow.add(75.0);
  overflow.add(100.0);
  EXPECT_EQ(overflow.quantile(0.5), 100.0);
  EXPECT_EQ(overflow.quantile(0.99), 100.0);
  Real prev = 0.0;
  for (Real q = 0.0; q <= 1.0; q += 0.1) {
    Real v = overflow.quantile(q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(ObsHistogram, MergeFoldsBucketsSumsAndInvalids) {
  Histogram a({1.0, 5.0});
  a.add(0.5);
  a.add(3.0);
  a.add(-1.0);  // invalid
  Histogram b({1.0, 5.0});
  b.add(0.25);
  b.add(100.0);  // overflow

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.invalid(), 1u);
  EXPECT_EQ(a.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_NEAR(a.sum(), 0.5 + 3.0 + 0.25 + 100.0, 1e-12);
  EXPECT_EQ(a.max(), 100.0);

  Histogram zero({1.0, 5.0});
  a.merge(zero);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.max(), 100.0);
}

TEST(ObsHistogram, MergeEdgeCases) {
  // Empty into empty: still empty, still sane.
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.invalid(), 0u);
  EXPECT_EQ(a.sum(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.quantile(0.5), 0.0);

  // Empty into populated and populated into empty both keep max() correct.
  Histogram filled({1.0, 2.0});
  filled.add(1.5);
  filled.merge(a);
  EXPECT_EQ(filled.count(), 1u);
  EXPECT_EQ(filled.max(), 1.5);
  a.merge(filled);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 1.5);

  // Mismatched bucket layouts are a contract violation, not a silent
  // misfold: differing edge values and differing edge counts both throw.
  Histogram other_edges({1.0, 3.0});
  EXPECT_THROW(a.merge(other_edges), ContractViolation);
  Histogram more_edges({1.0, 2.0, 3.0});
  EXPECT_THROW(a.merge(more_edges), ContractViolation);

  // Invalid-sample counters accumulate across merges without ever
  // touching count/sum.
  Histogram left({1.0});
  left.add(std::numeric_limits<Real>::quiet_NaN());
  left.add(0.5);
  Histogram right({1.0});
  right.add(-1.0);
  right.add(-2.0);
  left.merge(right);
  EXPECT_EQ(left.count(), 1u);
  EXPECT_EQ(left.invalid(), 3u);
  EXPECT_NEAR(left.sum(), 0.5, 1e-12);
}

// --------------------------------------------------------------- tracer

// Record one fixed sequence into `tracer`: a nested span pair with an
// instant and a counter on the calling thread, then one span on a second
// (joined) thread.
void record_fixture(Tracer& tracer) {
  tracer.set_enabled(true);
  tracer.begin_span("outer", 1.5, "k=v");
  tracer.instant("tick");
  tracer.begin_span("inner");
  tracer.counter("widgets", 3.0);
  tracer.end_span();
  tracer.end_span();
  std::thread worker([&tracer] {
    tracer.begin_span("worker");
    tracer.end_span();
  });
  worker.join();
  tracer.set_enabled(false);
}

TEST(ObsTracer, DumpTextShowsNestingAndMergedThreadsDeterministically) {
  Tracer tracer;
  record_fixture(tracer);
  const std::string expected =
      "thread 0\n"
      "span outer @vt=1.500 [k=v]\n"
      "  mark tick\n"
      "  span inner\n"
      "    count widgets = 3.000\n"
      "thread 1\n"
      "span worker\n";
  EXPECT_EQ(tracer.dump_text(), expected);

  // Same sequence, fresh tracer: byte-identical dump (wall times never
  // appear in the text form).
  Tracer again;
  record_fixture(again);
  EXPECT_EQ(again.dump_text(), expected);
  EXPECT_EQ(again.event_count(), 8u);  // 3 begins + 3 ends + instant + counter

  again.reset();
  EXPECT_EQ(again.event_count(), 0u);
  EXPECT_EQ(again.dump_text(), "");
}

TEST(ObsTracer, ChromeJsonIsStructuredAndTimeOrdered) {
  Tracer tracer;
  record_fixture(tracer);
  std::string json = tracer.export_chrome_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  // Closed spans export as complete ("X") events with a duration.
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"virtual_time\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"k=v\""), std::string::npos);

  // The exporter's contract: events sorted by timestamp.
  std::vector<double> stamps;
  for (std::size_t at = json.find("\"ts\":"); at != std::string::npos;
       at = json.find("\"ts\":", at + 1))
    stamps.push_back(std::strtod(json.c_str() + at + 5, nullptr));
  ASSERT_GE(stamps.size(), 5u);
  for (std::size_t i = 1; i < stamps.size(); ++i)
    EXPECT_GE(stamps[i], stamps[i - 1]);
}

TEST(ObsTracer, SpansStartedWhileDisabledRecordNothing) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.reset();
  {
    TraceSpan latched("never");
    // Enabling mid-span must not produce a dangling End event: TraceSpan
    // latches the decision at construction.
    tracer.set_enabled(true);
    COSCHED_TRACE_INSTANT("visible");
  }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.dump_text().find("never"), std::string::npos);
  tracer.reset();
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, ValidNameEnforcesConventionAndCharset) {
  EXPECT_TRUE(MetricsRegistry::valid_name("cosched_cache_hits_total"));
  EXPECT_TRUE(MetricsRegistry::valid_name("cosched_rpc_request_seconds"));
  EXPECT_FALSE(MetricsRegistry::valid_name("cache_hits_total"));  // no prefix
  EXPECT_FALSE(MetricsRegistry::valid_name("cosched_bad-dash"));
  EXPECT_FALSE(MetricsRegistry::valid_name("cosched_bad space"));
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& first = reg.counter("cosched_test_widgets_total", "widgets");
  first.inc(2);
  Counter& second = reg.counter("cosched_test_widgets_total", "widgets");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.value(), 2u);
}

TEST(ObsRegistry, PrometheusRenderRoundTripsThroughTheParser) {
  MetricsRegistry reg;
  reg.counter("cosched_test_widgets_total", "widgets made").inc(42);
  reg.gauge("cosched_test_depth", "queue depth").set(2.5);
  HistogramMetric& latency =
      reg.histogram("cosched_test_latency_seconds", "latency", {0.1, 1.0});
  latency.observe(0.05);
  latency.observe(0.5);
  latency.observe(5.0);
  reg.callback("cosched_test_sampled", "pulled at render time", "gauge",
               [] { return 7.0; });

  std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# HELP cosched_test_widgets_total widgets made"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cosched_test_latency_seconds histogram"),
            std::string::npos);

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(text, samples));
  std::map<std::string, double> by_key;
  for (const PrometheusSample& s : samples)
    by_key[s.name + (s.labels.empty() ? "" : "{" + s.labels + "}")] = s.value;

  EXPECT_EQ(by_key.at("cosched_test_widgets_total"), 42.0);
  EXPECT_EQ(by_key.at("cosched_test_depth"), 2.5);
  EXPECT_EQ(by_key.at("cosched_test_sampled"), 7.0);
  // Buckets are cumulative and end with le="+Inf" == _count.
  EXPECT_EQ(by_key.at("cosched_test_latency_seconds_bucket{le=\"0.1\"}"), 1.0);
  EXPECT_EQ(by_key.at("cosched_test_latency_seconds_bucket{le=\"1\"}"), 2.0);
  EXPECT_EQ(by_key.at("cosched_test_latency_seconds_bucket{le=\"+Inf\"}"),
            3.0);
  EXPECT_EQ(by_key.at("cosched_test_latency_seconds_count"), 3.0);
  EXPECT_NEAR(by_key.at("cosched_test_latency_seconds_sum"), 5.55, 1e-9);

  // Exposition is sorted by metric name.
  EXPECT_LT(text.find("cosched_test_depth"),
            text.find("cosched_test_latency_seconds"));
  EXPECT_LT(text.find("cosched_test_latency_seconds"),
            text.find("cosched_test_sampled"));
}

TEST(ObsRegistry, ParserRejectsMalformedLines) {
  std::vector<PrometheusSample> samples;
  EXPECT_FALSE(parse_prometheus_text("cosched_x_total\n", samples));
  EXPECT_FALSE(parse_prometheus_text("cosched_x_total notanumber\n", samples));
  EXPECT_FALSE(parse_prometheus_text("cosched_x{le=\"1\" 3\n", samples));
  EXPECT_TRUE(parse_prometheus_text("# just a comment\n\n", samples));
  EXPECT_TRUE(samples.empty());
}

// Callback metrics — the mechanism the server uses to expose tracer drops,
// cache hit ratios and subscriber counts — must survive a full exposition
// round-trip: render -> parse -> same names, types and values.
TEST(ObsRegistry, CallbackMetricsRoundTripThroughExposition) {
  MetricsRegistry reg;
  double live = 3.0;
  reg.callback("cosched_test_dropped_total", "events dropped", "counter",
               [] { return 12345.0; });
  reg.callback("cosched_test_buffered", "events buffered", "gauge",
               [&live] { return live; });

  std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE cosched_test_dropped_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE cosched_test_buffered gauge"),
            std::string::npos)
      << text;

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(text, samples)) << text;
  std::map<std::string, double> by_name;
  for (const PrometheusSample& s : samples) by_name[s.name] = s.value;
  EXPECT_EQ(by_name.at("cosched_test_dropped_total"), 12345.0);
  EXPECT_EQ(by_name.at("cosched_test_buffered"), 3.0);

  // Callbacks are pulled at render time: a state change shows up in the
  // next exposition without any re-registration.
  live = 9.0;
  samples.clear();
  ASSERT_TRUE(parse_prometheus_text(reg.render_prometheus(), samples));
  by_name.clear();
  for (const PrometheusSample& s : samples) by_name[s.name] = s.value;
  EXPECT_EQ(by_name.at("cosched_test_buffered"), 9.0);
}

// ---------------------------------------------------------- exemplars

// Each histogram bucket remembers one recent traced observation; newest
// wins on replacement, untraced (trace_id 0) and invalid samples never
// become exemplars. Determinism: a fixed add() sequence yields a fixed
// exemplar set.
TEST(ObsExemplars, NewestTracedObservationWinsPerBucket) {
  Histogram h({1.0, 10.0});
  h.add(0.5);              // untraced: bucket 0 stays exemplar-free
  h.add(5.0, 0xabc);       // bucket 1
  h.add(6.0, 0xdef);       // bucket 1 again: newest replaces
  h.add(-1.0, 0x999);      // invalid: dropped, never an exemplar
  h.add(100.0, 0x123);     // overflow bucket

  const std::vector<Exemplar>& ex = h.exemplars();
  ASSERT_EQ(ex.size(), 3u);  // edges + overflow, parallel to bucket_counts
  EXPECT_FALSE(ex[0].valid);
  ASSERT_TRUE(ex[1].valid);
  EXPECT_EQ(ex[1].trace_id, 0xdefu);
  EXPECT_EQ(ex[1].value, 6.0);
  ASSERT_TRUE(ex[2].valid);
  EXPECT_EQ(ex[2].trace_id, 0x123u);

  // Replacement is deterministic: replaying the sequence reproduces it.
  Histogram replay({1.0, 10.0});
  replay.add(0.5);
  replay.add(5.0, 0xabc);
  replay.add(6.0, 0xdef);
  replay.add(-1.0, 0x999);
  replay.add(100.0, 0x123);
  for (std::size_t i = 0; i < ex.size(); ++i) {
    EXPECT_EQ(ex[i].valid, replay.exemplars()[i].valid);
    EXPECT_EQ(ex[i].trace_id, replay.exemplars()[i].trace_id);
    EXPECT_EQ(ex[i].value, replay.exemplars()[i].value);
  }
}

// Merge carries exemplars: absent slots are adopted, contested slots go to
// the larger value (ties to the larger trace id) — an order-independent
// rule, so a metrics fan-in yields the same exemplar no matter which shard
// merges first.
TEST(ObsExemplars, MergeCarriesExemplarsOrderIndependently) {
  Histogram a({1.0});
  Histogram b({1.0});
  a.add(0.3, 0xa);   // both have a bucket-0 exemplar: larger value wins
  b.add(0.7, 0xb);
  b.add(9.0, 0xbb);  // only b has an overflow exemplar: adopted

  a.merge(b);
  ASSERT_TRUE(a.exemplars()[0].valid);
  EXPECT_EQ(a.exemplars()[0].trace_id, 0xbu);  // 0.7 beats 0.3
  EXPECT_EQ(a.exemplars()[0].value, 0.7);
  ASSERT_TRUE(a.exemplars()[1].valid);
  EXPECT_EQ(a.exemplars()[1].trace_id, 0xbbu);  // absent slot adopted

  // Commutativity: merging the other way lands on the same exemplars.
  Histogram a2({1.0});
  Histogram b2({1.0});
  a2.add(0.3, 0xa);
  b2.add(0.7, 0xb);
  b2.add(9.0, 0xbb);
  b2.merge(a2);
  for (std::size_t i = 0; i < a.exemplars().size(); ++i) {
    EXPECT_EQ(a.exemplars()[i].valid, b2.exemplars()[i].valid);
    EXPECT_EQ(a.exemplars()[i].trace_id, b2.exemplars()[i].trace_id);
    EXPECT_EQ(a.exemplars()[i].value, b2.exemplars()[i].value);
  }

  // Value ties resolve to the larger trace id — still order-independent.
  Histogram t1({1.0});
  Histogram t2({1.0});
  t1.add(0.5, 0x111);
  t2.add(0.5, 0x222);
  t1.merge(t2);
  EXPECT_EQ(t1.exemplars()[0].trace_id, 0x222u);
  Histogram t3({1.0});
  Histogram t4({1.0});
  t3.add(0.5, 0x111);
  t4.add(0.5, 0x222);
  t4.merge(t3);
  EXPECT_EQ(t4.exemplars()[0].trace_id, 0x222u);
}

// Byte-pin of the merged exposition: the fan-in path (per-shard histograms
// -> Histogram::merge -> render_prometheus_histogram) must render exactly
// these bytes, exemplars included. Any drift in the merge rule or the
// OpenMetrics syntax fails this string compare.
TEST(ObsExemplars, MergedHistogramRenderIsBytePinned) {
  Histogram shard0({0.1, 1.0});
  Histogram shard1({0.1, 1.0});
  shard0.add(0.05, 0xaaa);  // bucket 0, loses to shard1's 0.08
  shard0.add(0.5, 0xccc);   // bucket 1, uncontested
  shard1.add(0.08, 0xbbb);
  shard1.add(7.0, 0xddd);   // overflow bucket
  shard0.merge(shard1);

  std::ostringstream out;
  render_prometheus_histogram(out, "cosched_router_request_seconds", shard0,
                              /*with_exemplars=*/true);
  EXPECT_EQ(out.str(),
            "# TYPE cosched_router_request_seconds histogram\n"
            "cosched_router_request_seconds_bucket{le=\"0.1\"} 2"
            " # {trace_id=\"0000000000000bbb\"} 0.08\n"
            "cosched_router_request_seconds_bucket{le=\"1\"} 3"
            " # {trace_id=\"0000000000000ccc\"} 0.5\n"
            "cosched_router_request_seconds_bucket{le=\"+Inf\"} 4"
            " # {trace_id=\"0000000000000ddd\"} 7\n"
            "cosched_router_request_seconds_sum 7.63\n"
            "cosched_router_request_seconds_count 4\n");
}

// The OpenMetrics round-trip: render with exemplars, parse, recover the
// trace ids — and the default render stays byte-identical to pre-exemplar
// output so v1..v3 consumers (and the telemetry frames) see no change.
TEST(ObsExemplars, OpenMetricsRenderRoundTripsThroughTheParser) {
  MetricsRegistry reg;
  HistogramMetric& latency =
      reg.histogram("cosched_test_latency_seconds", "latency", {0.1, 1.0});
  latency.observe(0.05, 0xdeadbeefull);
  latency.observe(0.5);          // untraced: bucket 1 has no exemplar
  latency.observe(5.0, 0x1234ull);

  std::string plain = reg.render_prometheus();
  EXPECT_EQ(plain.find(" # {"), std::string::npos);

  std::string with = reg.render_prometheus(true);
  EXPECT_NE(with.find("le=\"0.1\"} 1 # {trace_id=\"00000000deadbeef\"} 0.05"),
            std::string::npos)
      << with;
  EXPECT_NE(with.find("le=\"+Inf\"} 3 # {trace_id=\"0000000000001234\"} 5"),
            std::string::npos)
      << with;

  // Stripping the exemplar suffixes must reproduce the plain exposition
  // byte for byte — the suffix is the only difference.
  std::string stripped;
  std::istringstream lines(with);
  std::string line;
  while (std::getline(lines, line)) {
    std::size_t at = line.find(" # {");
    stripped += at == std::string::npos ? line : line.substr(0, at);
    stripped += '\n';
  }
  EXPECT_EQ(stripped, plain);

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(with, samples)) << with;
  int exemplars = 0;
  for (const PrometheusSample& s : samples) {
    if (!s.has_exemplar) continue;
    ++exemplars;
    EXPECT_EQ(s.name, "cosched_test_latency_seconds_bucket");
    EXPECT_EQ(s.exemplar_labels.find("trace_id=\""), 0u);
    if (s.labels.find("+Inf") != std::string::npos) {
      EXPECT_EQ(s.exemplar_labels, "trace_id=\"0000000000001234\"");
      EXPECT_EQ(s.exemplar_value, 5.0);
    }
  }
  EXPECT_EQ(exemplars, 2);  // untraced middle bucket exports none

  // A malformed exemplar suffix is a parse error, not a silent skip.
  std::vector<PrometheusSample> bad;
  EXPECT_FALSE(parse_prometheus_text(
      "cosched_x_bucket{le=\"1\"} 2 # {trace_id=\"1\"\n", bad));
  EXPECT_FALSE(parse_prometheus_text(
      "cosched_x_bucket{le=\"1\"} 2 # {trace_id=\"1\"} nan-ish x\n", bad));
}

// Every-bucket-traced round-trip: when each bucket carries an exemplar the
// parser recovers one exemplar per finite bucket plus the overflow, each
// with the value that landed in that bucket. This is the exposition the
// alerting TSDB scrapes, so the parse must not drop or misattribute any.
TEST(ObsExemplars, FullyTracedHistogramRoundTripsEveryExemplar) {
  MetricsRegistry reg;
  HistogramMetric& h =
      reg.histogram("cosched_test_traced_seconds", "traced", {0.1, 1.0});
  h.observe(0.05, 0xa);
  h.observe(0.5, 0xb);
  h.observe(5.0, 0xc);

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(reg.render_prometheus(true), samples));
  std::map<std::string, std::pair<std::string, double>> by_bucket;
  for (const PrometheusSample& s : samples)
    if (s.has_exemplar)
      by_bucket[s.labels] = {s.exemplar_labels, s.exemplar_value};
  ASSERT_EQ(by_bucket.size(), 3u);
  EXPECT_EQ(by_bucket.at("le=\"0.1\"").first, "trace_id=\"000000000000000a\"");
  EXPECT_EQ(by_bucket.at("le=\"0.1\"").second, 0.05);
  EXPECT_EQ(by_bucket.at("le=\"1\"").first, "trace_id=\"000000000000000b\"");
  EXPECT_EQ(by_bucket.at("le=\"1\"").second, 0.5);
  EXPECT_EQ(by_bucket.at("le=\"+Inf\"").first,
            "trace_id=\"000000000000000c\"");
  EXPECT_EQ(by_bucket.at("le=\"+Inf\"").second, 5.0);
}

TEST(ObsExemplars, TraceIdHexIsZeroPadded16) {
  EXPECT_EQ(trace_id_hex(0x1234), "0000000000001234");
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(ObsRegistry, CallbacksCanBeReplacedAndUnregistered) {
  MetricsRegistry reg;
  reg.callback("cosched_test_live", "h", "gauge", [] { return 1.0; });
  reg.callback("cosched_test_live", "h", "gauge", [] { return 2.0; });
  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(parse_prometheus_text(reg.render_prometheus(), samples));
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 2.0);  // re-registration replaced the closure

  reg.unregister_callback("cosched_test_live");
  EXPECT_EQ(reg.render_prometheus(), "");
  reg.unregister_callback("cosched_test_live");  // idempotent
}

// -------------------------------------------------------- cache counters

// Hit/miss/evict/compaction counters against a hand-computed sequence.
TEST(ObsCacheCounters, MatchHandComputedSequence) {
  DegradationCache cache(2);
  Real out = 0.0;

  std::string k_a = DegradationCache::make_key(0, {1});
  std::string k_b = DegradationCache::make_key(1, {0});
  std::string k_c = DegradationCache::make_key(2, {3});

  EXPECT_FALSE(cache.lookup(k_a, out));  // miss 1
  cache.insert(k_a, 0.1);
  cache.insert(k_b, 0.2);
  cache.insert(k_c, 0.3);
  EXPECT_TRUE(cache.lookup(k_a, out));   // hit 1
  EXPECT_TRUE(cache.lookup(k_b, out));   // hit 2
  EXPECT_FALSE(cache.lookup(DegradationCache::make_key(9, {}), out));  // miss 2

  // Processes 2 and 3 finished: k_c mentions a dead id and must go.
  std::vector<ProcessId> live = {0, 1};
  EXPECT_EQ(cache.evict_dead(live), 1u);
  EXPECT_EQ(cache.evict_dead(live), 0u);  // second pass finds nothing

  DegradationCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.compactions, 2u);  // both passes count, even the empty one
  EXPECT_NEAR(s.hit_rate(), 0.5, 1e-12);
}

// ----------------------------------------- end-to-end replan trace (HA*)

// THE observability acceptance criterion: tracing an HA*-backed online run
// yields the admission -> fresh_solve -> alignment -> commit hierarchy
// under online.replan, with astar spans inside the solve phase and
// non-zero expansion counters in the global registry.
TEST(ObsEndToEnd, ReplanTraceShowsPhaseHierarchyAndAstarCounters) {
  Counter& expansions = MetricsRegistry::global().counter(
      "cosched_astar_expansions_total", "HA*/OA* node expansions");
  Counter& searches = MetricsRegistry::global().counter(
      "cosched_astar_searches_total", "HA*/OA* searches run");
  std::uint64_t expansions_before = expansions.value();
  std::uint64_t searches_before = searches.value();

  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.reset();
  tracer.set_enabled(true);

  TraceSpec spec;
  spec.job_count = 12;
  spec.mean_interarrival = 2.0;
  spec.work_lo = 4.0;
  spec.work_hi = 12.0;
  spec.parallel_fraction = 0.2;
  spec.max_parallel_processes = 2;
  spec.seed = 11;
  OnlineSchedulerOptions options;
  options.cores = 2;
  options.machines = 3;
  options.admission.every_k = 2;
  options.solver = OnlineSolverKind::HAStar;
  options.log_process_finish = false;
  OnlineScheduler service(options);
  service.run(generate_trace(spec));

  tracer.set_enabled(false);
  std::string dump = tracer.dump_text();
  std::string json = tracer.export_chrome_json();
  tracer.reset();

  // Phase hierarchy, with indentation proving the nesting.
  EXPECT_NE(dump.find("span online.replan"), std::string::npos);
  EXPECT_NE(dump.find("\n  span replan.admission"), std::string::npos);
  EXPECT_NE(dump.find("\n  span replan.fresh_solve"), std::string::npos);
  EXPECT_NE(dump.find("\n  span replan.alignment"), std::string::npos);
  EXPECT_NE(dump.find("\n  span replan.commit"), std::string::npos);
  // The solver's own span sits inside the fresh-solve phase (depth 2).
  EXPECT_NE(dump.find("\n    span astar.search"), std::string::npos);
  EXPECT_NE(dump.find("variant=HA*"), std::string::npos);

  // Chrome export carries the same span names as complete events.
  for (const char* name :
       {"online.replan", "replan.admission", "replan.fresh_solve",
        "replan.alignment", "replan.commit", "astar.search",
        "astar.expansions"})
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;

  // Non-zero HA* work was recorded in the registry.
  EXPECT_GT(searches.value(), searches_before);
  EXPECT_GT(expansions.value(), expansions_before);
}

// ------------------------------------------- cross-process dump merging

std::size_t occurrences(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++n;
  return n;
}

TEST(ObsTraceMerge, TextNamespacePrefixesEveryNameAndThread) {
  const std::string dump =
      "thread 0\n"
      "  span online.replan @vt=4 trace=9\n"
      "    mark replan.commit\n"
      "  count rpc.queue_depth = 3\n";
  EXPECT_EQ(namespace_trace_text(dump, "shard0/"),
            "thread shard0/0\n"
            "  span shard0/online.replan @vt=4 trace=9\n"
            "    mark shard0/replan.commit\n"
            "  count shard0/rpc.queue_depth = 3\n");
}

TEST(ObsTraceMerge, ChromeNamespaceMovesPidAndLeavesFlowNamesAlone) {
  const std::string json =
      "[{\"name\":\"online.replan\",\"cat\":\"cosched\",\"ph\":\"X\","
      "\"ts\":1,\"pid\":1,\"tid\":0,\"dur\":5},\n"
      "{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":9,"
      "\"ts\":1,\"pid\":1,\"tid\":0}]\n";
  std::string out = namespace_chrome_trace(json, 3, "shard1/");
  EXPECT_NE(out.find("\"name\":\"shard1/online.replan\""), std::string::npos)
      << out;
  // The flow record keeps its name — Perfetto binds flows by
  // (cat, name, id), and an unchanged pair is what draws the cross-process
  // arrow after the merge...
  EXPECT_NE(out.find("{\"name\":\"trace\",\"cat\":\"flow\""),
            std::string::npos)
      << out;
  // ...but both records moved to the target pid.
  EXPECT_EQ(occurrences(out, "\"pid\":3,"), 2u) << out;
  EXPECT_EQ(out.find("\"pid\":1,"), std::string::npos) << out;
}

TEST(ObsTraceMerge, MergedArraysStayOneLoadableArray) {
  const std::string a = "[{\"name\":\"a\",\"pid\":1,\"tid\":0}]\n";
  const std::string b =
      "[{\"name\":\"b\",\"pid\":2,\"tid\":0},\n"
      "{\"name\":\"c\",\"pid\":2,\"tid\":1}]\n";
  std::string merged = merge_chrome_traces({a, b});
  EXPECT_EQ(merged.rfind("[", 0), 0u);
  EXPECT_EQ(merged.substr(merged.size() - 2), "]\n");
  EXPECT_EQ(occurrences(merged, "{\"name\":\""), 3u) << merged;
  for (const char* name : {"\"a\"", "\"b\"", "\"c\""})
    EXPECT_NE(merged.find(std::string("{\"name\":") + name),
              std::string::npos)
        << merged;
  // Empty parts contribute nothing (and leave no stray separators).
  EXPECT_EQ(merge_chrome_traces({"[]\n", a}), a);
}

TEST(ObsTraceMerge, RealExportsSurviveNamespacingAndMerge) {
  // Two dumps from a real tracer: the "router" part untouched, the same
  // export namespaced as a shard — exactly what the TraceDump fan-in does.
  Tracer tracer;
  tracer.set_enabled(true);
  TraceContextScope scope(tracer.make_context(0x77));
  tracer.begin_span("rpc.request");
  tracer.begin_span("online.replan", 2.0);
  tracer.end_span();
  tracer.end_span();
  std::string json = tracer.export_chrome_json();
  std::string merged =
      merge_chrome_traces({json, namespace_chrome_trace(json, 2, "shard0/")});
  // Both copies of each span survive, one per pid, flows unrenamed.
  EXPECT_NE(merged.find("\"name\":\"online.replan\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"shard0/online.replan\""),
            std::string::npos);
  EXPECT_GT(occurrences(merged, "\"pid\":2,"), 0u);
  EXPECT_EQ(occurrences(merged, "\"cat\":\"flow\""),
            2 * occurrences(json, "\"cat\":\"flow\""));
  EXPECT_EQ(merged.find("\"name\":\"shard0/trace\""), std::string::npos);
}


// ------------------------------------------------------------ logger

TEST(ObsLogger, LevelThresholdFiltersBeforeCounting) {
  Logger logger;
  logger.set_level(LogLevel::Warn);
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));

  logger.log(LogLevel::Debug, "test", "below threshold");
  logger.log(LogLevel::Info, "test", "below threshold");
  logger.log(LogLevel::Warn, "test", "kept");
  logger.log(LogLevel::Error, "test", "kept too");

  EXPECT_EQ(logger.records_total(LogLevel::Debug), 0u);
  EXPECT_EQ(logger.records_total(LogLevel::Info), 0u);
  EXPECT_EQ(logger.records_total(LogLevel::Warn), 1u);
  EXPECT_EQ(logger.records_total(LogLevel::Error), 1u);
  EXPECT_EQ(logger.dropped_records(), 0u);  // filtered != dropped
  EXPECT_EQ(logger.buffered_records(), 2u);
}

TEST(ObsLogger, RingOverwritesOldestAndCountsDrops) {
  Logger logger;
  logger.set_level(LogLevel::Debug);
  logger.set_max_records_per_thread(4);
  for (int i = 0; i < 10; ++i)
    logger.log(LogLevel::Info, "ring", "msg " + std::to_string(i));

  EXPECT_EQ(logger.buffered_records(), 4u);
  EXPECT_EQ(logger.dropped_records(), 6u);
  EXPECT_EQ(logger.records_total(LogLevel::Info), 10u);  // accepted, then shed

  std::vector<LogRecord> records = logger.collect();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].message, "msg " + std::to_string(6 + i));
    if (i > 0) {
      EXPECT_GT(records[i].seq, records[i - 1].seq);
    }
  }

  // collect() honors the component filter and the newest-N cap.
  logger.log(LogLevel::Info, "other", "different component");
  EXPECT_EQ(logger.collect("other").size(), 1u);
  EXPECT_EQ(logger.collect("ring").size(), 3u);  // one slot overwritten
  EXPECT_EQ(logger.collect("", 2).size(), 2u);
}

TEST(ObsLogger, TokenBucketShedsFloodObservably) {
  Logger logger;
  logger.set_level(LogLevel::Debug);
  // Burst of 3, effectively no refill: exactly 3 records pass.
  logger.set_rate_limit(1e-9, 3.0);
  for (int i = 0; i < 10; ++i) logger.log(LogLevel::Info, "flood", "x");
  EXPECT_EQ(logger.records_total(LogLevel::Info), 3u);
  EXPECT_EQ(logger.buffered_records(), 3u);
  EXPECT_EQ(logger.dropped_records(), 7u);

  // rate <= 0 turns limiting back off.
  logger.set_rate_limit(0.0, 0.0);
  logger.log(LogLevel::Info, "flood", "y");
  EXPECT_EQ(logger.records_total(LogLevel::Info), 4u);
}

TEST(ObsLogger, RecordsCarryTheCurrentTraceContext) {
  Logger logger;
  logger.set_level(LogLevel::Debug);
  {
    TraceContextScope scope(Tracer::global().make_context(0xAB));
    logger.log(LogLevel::Info, "rpc", "correlated");
  }
  logger.log(LogLevel::Info, "rpc", "uncorrelated");
  std::vector<LogRecord> records = logger.collect();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0xABu);
  EXPECT_EQ(records[1].trace_id, 0u);
}

TEST(ObsLogger, RendersLogfmtAndJsonLines) {
  Logger logger;
  logger.set_level(LogLevel::Debug);
  logger.log(LogLevel::Warn, "router", "submit spilled",
             {log_kv("job", std::int64_t{17}), log_kv("tenant", "acme"),
              log_kv("ok", true)});
  std::vector<LogRecord> records = logger.collect();
  ASSERT_EQ(records.size(), 1u);

  std::string text = logger.render(records[0]);
  EXPECT_NE(text.find(" warn router submit spilled"), std::string::npos)
      << text;
  EXPECT_NE(text.find("job=17"), std::string::npos);
  EXPECT_NE(text.find("tenant=acme"), std::string::npos);
  EXPECT_NE(text.find("ok=true"), std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);

  logger.set_json(true);
  std::string json = logger.render(records[0]);
  EXPECT_NE(json.find("\"level\":\"warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"component\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"submit spilled\""), std::string::npos);
  EXPECT_NE(json.find("\"job\":17"), std::string::npos);       // unquoted int
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(ObsLogger, SinkAppendsRenderedLines) {
  std::string path = "logger_sink_test.log";
  {
    Logger logger;
    logger.set_level(LogLevel::Debug);
    ASSERT_TRUE(logger.set_sink_path(path));
    logger.log(LogLevel::Info, "sink", "first");
    logger.log(LogLevel::Error, "sink", "second");
    logger.set_sink_path("");  // close, flush
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("info sink first"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("error sink second"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsLogger, ParseLogLevelRoundTrips) {
  LogLevel level = LogLevel::Info;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_EQ(level, LogLevel::Off);  // untouched on failure
  for (LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off}) {
    LogLevel parsed = LogLevel::Info;
    EXPECT_TRUE(parse_log_level(to_string(l), parsed));
    EXPECT_EQ(parsed, l);
  }
}

TEST(ObsLogger, MacroAndMetricsRideTheGlobalLogger) {
  Logger& logger = Logger::global();
  logger.reset();
  logger.set_level(LogLevel::Info);
  COSCHED_LOG(LogLevel::Debug, "macro", "filtered out");
  COSCHED_LOG(LogLevel::Info, "macro", "kept",
              {log_kv("n", std::int64_t{1})});
  EXPECT_EQ(logger.records_total(LogLevel::Debug), 0u);
  EXPECT_EQ(logger.records_total(LogLevel::Info), 1u);

  std::string page = render_log_metrics();
  EXPECT_NE(page.find("cosched_log_records_total{level=\"info\"} 1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("cosched_log_records_total{level=\"error\"} 0"),
            std::string::npos);
  EXPECT_NE(page.find("cosched_log_dropped_total 0"), std::string::npos);
  logger.reset();
}

// ------------------------------------------------------------ journal

JournalEvent make_event(std::int64_t job, JournalEventKind kind, Real time) {
  JournalEvent event;
  event.job_id = job;
  event.kind = kind;
  event.time = time;
  return event;
}

TEST(ObsJournal, QueryReturnsOneJobInDecisionOrder) {
  DecisionJournal journal(16);
  journal.append(make_event(-1, JournalEventKind::BatchTrigger, 1.0));
  journal.append(make_event(0, JournalEventKind::Admission, 1.0));
  journal.append(make_event(1, JournalEventKind::Admission, 1.0));
  journal.append(make_event(0, JournalEventKind::Placement, 1.0));
  journal.append(make_event(0, JournalEventKind::Completion, 9.0));

  JobTimeline timeline = journal.query(0);
  EXPECT_FALSE(timeline.truncated);
  ASSERT_EQ(timeline.events.size(), 3u);
  EXPECT_EQ(timeline.events[0].kind, JournalEventKind::Admission);
  EXPECT_EQ(timeline.events[1].kind, JournalEventKind::Placement);
  EXPECT_EQ(timeline.events[2].kind, JournalEventKind::Completion);
  for (std::size_t i = 1; i < timeline.events.size(); ++i)
    EXPECT_GT(timeline.events[i].seq, timeline.events[i - 1].seq);

  EXPECT_TRUE(journal.query(42).events.empty());
  EXPECT_FALSE(journal.query(42).truncated);  // nothing dropped yet
}

TEST(ObsJournal, OverflowEvictsOldestFirstWithExactAccounting) {
  DecisionJournal journal(4);
  for (int i = 0; i < 10; ++i)
    journal.append(make_event(i, JournalEventKind::Admission,
                              static_cast<Real>(i)));
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped_total(), 6u);
  EXPECT_EQ(journal.events_total(JournalEventKind::Admission), 10u);

  std::vector<JournalEvent> all = journal.tail(SIZE_MAX);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].job_id, static_cast<std::int64_t>(6 + i));  // oldest gone
    EXPECT_EQ(all[i].seq, 6 + i);
  }
  EXPECT_EQ(journal.tail(2).size(), 2u);
  EXPECT_EQ(journal.tail(2).front().job_id, 8);  // newest-N, ascending
}

TEST(ObsJournal, EvictedJobAnswersTruncatedNotError) {
  DecisionJournal journal(3);
  journal.append(make_event(0, JournalEventKind::Admission, 1.0));
  journal.append(make_event(0, JournalEventKind::Placement, 1.0));
  journal.append(make_event(1, JournalEventKind::Admission, 2.0));
  journal.append(make_event(1, JournalEventKind::Placement, 2.0));
  journal.append(make_event(0, JournalEventKind::Completion, 5.0));
  // Ring now holds [1/Admission, 1/Placement, 0/Completion]; job 0's
  // admission and placement were evicted.
  ASSERT_EQ(journal.dropped_total(), 2u);

  JobTimeline rolled = journal.query(0);
  EXPECT_TRUE(rolled.truncated);  // history rolled over, still well-formed
  ASSERT_EQ(rolled.events.size(), 1u);
  EXPECT_EQ(rolled.events[0].kind, JournalEventKind::Completion);

  JobTimeline intact = journal.query(1);
  EXPECT_FALSE(intact.truncated);  // starts at its admission
  EXPECT_EQ(intact.events.size(), 2u);

  JobTimeline vanished = journal.query(99);
  EXPECT_TRUE(vanished.truncated);  // maybe evicted: cannot prove absence
  EXPECT_TRUE(vanished.events.empty());
}

TEST(ObsJournal, ShrinkingCapacityEvictsImmediately) {
  DecisionJournal journal(8);
  for (int i = 0; i < 8; ++i)
    journal.append(make_event(i, JournalEventKind::Admission, 0.0));
  journal.set_capacity(3);
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.dropped_total(), 5u);
  EXPECT_EQ(journal.tail(SIZE_MAX).front().job_id, 5);

  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped_total(), 0u);
  journal.append(make_event(0, JournalEventKind::Admission, 0.0));
  EXPECT_GE(journal.tail(1).front().seq, 8u);  // seq keeps climbing
}

TEST(ObsJournal, RenderAndMetricsExposition) {
  DecisionJournal journal(8);
  JournalEvent event = make_event(7, JournalEventKind::Placement, 3.25);
  event.trace_id = 0x2A;
  event.policy = "solver";
  event.machine = 2;
  event.candidates = 4;
  event.degradation_delta = 0.125;
  event.co_runners = {3, 5};
  event.detail = "batch=2";
  journal.append(event);

  std::string line = render_journal_event(journal.tail(1).front());
  EXPECT_NE(line.find("kind=placement"), std::string::npos) << line;
  EXPECT_NE(line.find("job=7"), std::string::npos);
  EXPECT_NE(line.find("policy=solver"), std::string::npos);
  EXPECT_NE(line.find("machine=2"), std::string::npos);
  EXPECT_NE(line.find("co_runners=[3,5]"), std::string::npos);
  EXPECT_NE(line.find("batch=2"), std::string::npos);

  std::string page = render_journal_metrics(journal);
  EXPECT_NE(page.find("cosched_journal_events_total{kind=\"placement\"} 1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("cosched_journal_events_total{kind=\"migration\"} 0"),
            std::string::npos);
  EXPECT_NE(page.find("cosched_journal_events_dropped_total 0"),
            std::string::npos);
}


}  // namespace
}  // namespace cosched
