// Tests for the baselines: PG greedy, random schedules, local search.
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "baseline/local_search.hpp"
#include "baseline/pg_greedy.hpp"
#include "baseline/random_schedule.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pe_problem;
using testhelpers::random_serial_problem;

TEST(PgGreedy, ProducesValidSchedules) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Problem p = random_serial_problem(16, 4, seed);
    Solution s = solve_pg_greedy(p);
    validate_solution(p, s);
  }
}

TEST(PgGreedy, DeterministicAcrossCalls) {
  Problem p = random_serial_problem(12, 4, 4);
  EXPECT_EQ(solve_pg_greedy(p).machines, solve_pg_greedy(p).machines);
}

TEST(PgGreedy, NeverBeatsTheOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Problem p = random_serial_problem(12, 4, seed);
    auto opt = solve_oastar(p);
    Real pg = evaluate_solution(p, solve_pg_greedy(p)).total;
    ASSERT_TRUE(opt.found);
    EXPECT_GE(pg, opt.objective - 1e-9) << "seed " << seed;
  }
}

TEST(PgGreedy, BalancedVariantBeatsRandomOnAverage) {
  // Contention-aware greedy beats contention-oblivious placement. Note:
  // plain PG (politeness zip-pairing) can actually LOSE to random on
  // bimodal mixes — once the per-machine seeds are placed, the leftover
  // cache-hungry jobs end up zipped together in the tail machines. That
  // structural weakness is consistent with the large HA*-vs-PG gaps the
  // paper reports. The min-increment variant (PG+) repairs it.
  Real pgb_total = 0.0, rnd_total = 0.0;
  Rng rng(99);
  for (std::uint64_t seed = 10; seed < 25; ++seed) {
    Problem p = random_serial_problem(24, 4, seed);
    pgb_total += evaluate_solution(p, solve_pg_greedy_balanced(p)).total;
    rnd_total += evaluate_solution(p, solve_random(p, rng)).total;
  }
  EXPECT_LT(pgb_total, rnd_total);
}

TEST(PgGreedy, HandlesParallelMixes) {
  Problem p = random_pe_problem(6, {4, 3}, 4, 11);
  Solution s = solve_pg_greedy(p);
  validate_solution(p, s);
}

TEST(RandomSchedule, IsValidAndSeedDependent) {
  Problem p = random_serial_problem(16, 4, 12);
  Rng rng_a(1), rng_b(1), rng_c(2);
  Solution a = solve_random(p, rng_a);
  Solution b = solve_random(p, rng_b);
  Solution c = solve_random(p, rng_c);
  validate_solution(p, a);
  validate_solution(p, c);
  EXPECT_EQ(a.machines, b.machines);  // same seed, same schedule
  EXPECT_NE(a.machines, c.machines);  // overwhelmingly likely
}

TEST(LocalSearch, NeverWorsensTheStart) {
  Problem p = random_serial_problem(16, 4, 13);
  Rng rng(5);
  Solution start = solve_random(p, rng);
  Real start_obj = evaluate_solution(p, start).total;
  auto improved = improve_by_swaps(p, start);
  validate_solution(p, improved.solution);
  EXPECT_LE(improved.objective, start_obj + 1e-12);
}

TEST(LocalSearch, ReachesOptimumOnTinyInstances) {
  // With 4 processes on 2 machines the swap neighbourhood covers the whole
  // solution space.
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    Problem p = random_serial_problem(4, 2, seed);
    auto brute = solve_brute_force(p);
    Rng rng(seed);
    auto improved = improve_by_swaps(p, solve_random(p, rng));
    EXPECT_NEAR(improved.objective, brute.objective, 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearch, FixedPointOfOptimumIsOptimum) {
  Problem p = random_serial_problem(8, 4, 24);
  auto opt = solve_oastar(p);
  ASSERT_TRUE(opt.found);
  auto improved = improve_by_swaps(p, opt.solution);
  EXPECT_NEAR(improved.objective, opt.objective, 1e-9);
  EXPECT_EQ(improved.swaps_applied, 0u);
}

TEST(BruteForce, CountsCanonicalPartitions) {
  // 6 processes on 2-core machines: 6!/(2!^3 3!) = 15 partitions.
  Problem p = random_serial_problem(6, 2, 25);
  auto r = solve_brute_force(p);
  // Pruning may skip some; disable pruning is not exposed, so only check
  // we examined at least one and the objective is positive.
  EXPECT_GE(r.partitions_examined, 1u);
  EXPECT_GT(r.objective, 0.0);
  validate_solution(p, r.solution);
}

}  // namespace
}  // namespace cosched
