// Unit tests for src/workload: jobs, batches, padding, benchmark catalog.
#include <gtest/gtest.h>

#include "cache/machine_config.hpp"
#include "workload/benchmark_catalog.hpp"
#include "workload/job_batch.hpp"

namespace cosched {
namespace {

TEST(JobBatch, SerialJobsOwnOneProcess) {
  JobBatch batch;
  JobId a = batch.add_job("a", JobKind::Serial, 1);
  JobId b = batch.add_job("b", JobKind::Serial, 1);
  EXPECT_EQ(batch.job_count(), 2);
  EXPECT_EQ(batch.process_count(), 2);
  EXPECT_EQ(batch.job_of(0), a);
  EXPECT_EQ(batch.job_of(1), b);
  EXPECT_EQ(batch.parallel_job_count(), 0);
}

TEST(JobBatch, ParallelJobsGetConsecutiveProcesses) {
  JobBatch batch;
  batch.add_job("s", JobKind::Serial, 1);
  JobId p = batch.add_job("mpi", JobKind::ParallelComm, 4);
  EXPECT_EQ(batch.process_count(), 5);
  EXPECT_EQ(batch.job(p).processes, (std::vector<ProcessId>{1, 2, 3, 4}));
  EXPECT_EQ(batch.job(p).parallel_index, 0);
  EXPECT_TRUE(batch.is_parallel_process(2));
  EXPECT_FALSE(batch.is_parallel_process(0));
  EXPECT_EQ(batch.parallel_index_of(3), 0);
  EXPECT_EQ(batch.parallel_index_of(0), -1);
}

TEST(JobBatch, ParallelIndicesAreSequential) {
  JobBatch batch;
  batch.add_job("p1", JobKind::ParallelNoComm, 2);
  batch.add_job("s", JobKind::Serial, 1);
  batch.add_job("p2", JobKind::ParallelComm, 3);
  EXPECT_EQ(batch.parallel_job_count(), 2);
  EXPECT_EQ(batch.job(0).parallel_index, 0);
  EXPECT_EQ(batch.job(2).parallel_index, 1);
}

TEST(JobBatch, PaddingReachesMultiple) {
  JobBatch batch;
  for (int i = 0; i < 5; ++i) batch.add_job("s", JobKind::Serial, 1);
  std::int32_t added = batch.pad_to_multiple(4);
  EXPECT_EQ(added, 3);
  EXPECT_EQ(batch.process_count(), 8);
  EXPECT_EQ(batch.real_process_count(), 5);
  EXPECT_TRUE(batch.is_imaginary(7));
  EXPECT_FALSE(batch.is_imaginary(4));
  EXPECT_EQ(batch.pad_to_multiple(4), 0);  // already aligned
}

TEST(JobBatch, SerialJobWithMultipleProcessesRejected) {
  JobBatch batch;
  EXPECT_THROW(batch.add_job("bad", JobKind::Serial, 2), ContractViolation);
}

TEST(JobBatch, RealJobAfterPaddingRejected) {
  JobBatch batch;
  batch.add_job("s", JobKind::Serial, 1);
  batch.pad_to_multiple(2);
  EXPECT_THROW(batch.add_job("late", JobKind::Serial, 1), ContractViolation);
}

TEST(JobBatch, ProcessLabels) {
  JobBatch batch;
  batch.add_job("BT", JobKind::Serial, 1);
  batch.add_job("MG-Par", JobKind::ParallelComm, 2);
  EXPECT_EQ(batch.process_label(0), "BT");
  EXPECT_EQ(batch.process_label(1), "MG-Par[0]");
  EXPECT_EQ(batch.process_label(2), "MG-Par[1]");
}

// ----------------------------------------------------------------- catalog

TEST(BenchmarkCatalog, ContainsAllPaperPrograms) {
  for (const auto& name : npb_serial_names())
    EXPECT_TRUE(has_catalog_entry(name)) << name;
  for (const auto& name : spec_serial_names())
    EXPECT_TRUE(has_catalog_entry(name)) << name;
  for (const auto& name : pe_program_names())
    EXPECT_TRUE(has_catalog_entry(name)) << name;
  for (const auto& name : pc_program_names())
    EXPECT_TRUE(has_catalog_entry(name)) << name;
  EXPECT_FALSE(has_catalog_entry("nonexistent"));
  EXPECT_THROW(catalog_entry("nonexistent"), ContractViolation);
}

TEST(BenchmarkCatalog, CharacterizationIsDeterministic) {
  ProgramCharacterizer c1(quad_core_machine(), 50000, 42);
  ProgramCharacterizer c2(quad_core_machine(), 50000, 42);
  const auto& a = c1.characterize("CG");
  const auto& b = c2.characterize("CG");
  EXPECT_DOUBLE_EQ(a.solo_miss_rate, b.solo_miss_rate);
  EXPECT_DOUBLE_EQ(a.solo_time_seconds, b.solo_time_seconds);
}

TEST(BenchmarkCatalog, ComputeVsMemoryBoundSeparation) {
  ProgramCharacterizer c(quad_core_machine(), 50000, 42);
  // EP and PI are compute-bound with tiny working sets.
  EXPECT_LT(c.characterize("EP").solo_miss_rate, 0.05);
  EXPECT_LT(c.characterize("PI").solo_miss_rate, 0.05);
  // RA (RandomAccess) and art thrash the shared cache.
  EXPECT_GT(c.characterize("RA").solo_miss_rate, 0.30);
  EXPECT_GT(c.characterize("art").solo_miss_rate, 0.10);
  // Memory-bound programs miss more than compute-bound ones.
  EXPECT_GT(c.characterize("RA").solo_miss_rate,
            c.characterize("EP").solo_miss_rate);
}

TEST(BenchmarkCatalog, MemoizationReturnsSameObject) {
  ProgramCharacterizer c(dual_core_machine(), 50000, 42);
  const auto* first = &c.characterize("LU");
  const auto* second = &c.characterize("LU");
  EXPECT_EQ(first, second);
}

TEST(BenchmarkCatalog, SmallerCacheRaisesMissRate) {
  ProgramCharacterizer small(dual_core_machine(), 50000, 42);   // 4 MB
  ProgramCharacterizer large(eight_core_machine(), 50000, 42);  // 20 MB
  // Same catalog fractions scale with the cache; pick a program with an
  // absolute structure: miss rates should differ (regions scale, so this
  // checks the pipeline runs; LU has mid-size regions on both).
  Real rs = small.characterize("LU").solo_miss_rate;
  Real rl = large.characterize("LU").solo_miss_rate;
  EXPECT_GE(rs, 0.0);
  EXPECT_GE(rl, 0.0);
  EXPECT_LE(rs, 1.0);
  EXPECT_LE(rl, 1.0);
}

TEST(BenchmarkCatalog, TimingFieldsPopulated) {
  ProgramCharacterizer c(quad_core_machine(), 50000, 42);
  const auto& p = c.characterize("FT");
  EXPECT_GT(p.timing.base_cycles, 0.0);
  EXPECT_GT(p.solo_time_seconds, 0.0);
  EXPECT_EQ(p.sdp.associativity(),
            quad_core_machine().shared_cache.associativity);
  EXPECT_NEAR(p.sdp.total_accesses(), 50000.0, 0.5);
}

}  // namespace
}  // namespace cosched
