// Tests for the IP model and branch & bound: optimality vs brute force and
// OA*, warm starts, solver configurations.
#include <gtest/gtest.h>

#include "astar/search.hpp"
#include "baseline/brute_force.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"
#include "test_helpers.hpp"

namespace cosched {
namespace {

using testhelpers::random_pc_problem;
using testhelpers::random_pe_problem;
using testhelpers::random_serial_problem;

TEST(IpModel, ColumnCountIsBinomial) {
  Problem p = random_serial_problem(8, 4, 1);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  EXPECT_EQ(model.num_y, 70);  // C(8,4)
  EXPECT_EQ(model.num_z, 0);   // no parallel jobs
  EXPECT_EQ(model.lp.num_rows(), 8);
  EXPECT_EQ(model.lp.num_vars(), 70);
}

TEST(IpModel, ParallelJobsAddAuxVariablesAndLinkRows) {
  Problem p = random_pe_problem(2, {2}, 2, 2);  // 4 processes, 1 parallel job
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  EXPECT_EQ(model.num_y, 6);  // C(4,2)
  EXPECT_EQ(model.num_z, 1);
  // 4 partition rows + 2 z-link rows (one per parallel process).
  EXPECT_EQ(model.lp.num_rows(), 6);
}

TEST(IpModel, DecodeRejectsFractional) {
  Problem p = random_serial_problem(4, 2, 3);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  std::vector<Real> x(static_cast<std::size_t>(model.lp.num_vars()), 0.0);
  x[0] = 0.5;
  EXPECT_THROW(model.decode(x), ContractViolation);
}

class IpOptimality : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IpOptimality, BnBMatchesBruteForceSerial) {
  auto [jobs, cores] = GetParam();
  Problem p = random_serial_problem(jobs, static_cast<std::uint32_t>(cores),
                                    static_cast<std::uint64_t>(jobs * 7 + cores));
  auto brute = solve_brute_force(p);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  auto result = solve_branch_and_bound(model);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_NEAR(result.objective, brute.objective, 1e-6);
  validate_solution(p, result.solution);
  auto ev = evaluate_solution(p, result.solution);
  EXPECT_NEAR(ev.total, result.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IpOptimality,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{6, 2},
                                           std::tuple{8, 2}, std::tuple{8, 4},
                                           std::tuple{12, 4},
                                           std::tuple{10, 2}));

TEST(IpOptimality, MatchesBruteForceWithParallelJobs) {
  for (std::uint64_t seed : {5u, 6u}) {
    Problem p = random_pe_problem(4, {2, 2}, 2, seed);
    auto brute = solve_brute_force(p);
    auto model = build_ip_model(p, *p.full_model,
                                Aggregation::MaxPerParallelJob);
    auto result = solve_branch_and_bound(model);
    ASSERT_TRUE(result.optimal) << "seed " << seed;
    EXPECT_NEAR(result.objective, brute.objective, 1e-6) << "seed " << seed;
  }
}

TEST(IpOptimality, MatchesBruteForceWithPcJobs) {
  Problem p = random_pc_problem(2, {4}, 2, 17);
  auto brute = solve_brute_force(p);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  auto result = solve_branch_and_bound(model);
  ASSERT_TRUE(result.optimal);
  EXPECT_NEAR(result.objective, brute.objective, 1e-6);
}

TEST(IpOptimality, AgreesWithOaStarAcrossConfigs) {
  // Table I/II's claim: IP and OA* find the same optimum.
  Problem p = random_serial_problem(12, 4, 77);
  auto oastar = solve_oastar(p);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);

  for (auto order : {BnBOptions::NodeOrder::BestBound,
                     BnBOptions::NodeOrder::DepthFirst}) {
    for (auto rule : {BnBOptions::BranchRule::MostFractional,
                      BnBOptions::BranchRule::FirstFractional}) {
      BnBOptions opt;
      opt.node_order = order;
      opt.branch_rule = rule;
      auto result = solve_branch_and_bound(model, opt);
      ASSERT_TRUE(result.optimal);
      EXPECT_NEAR(result.objective, oastar.objective, 1e-6);
    }
  }
}

TEST(BranchAndBound, WarmStartBoundPrunesButKeepsOptimum) {
  Problem p = random_serial_problem(8, 4, 88);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  auto cold = solve_branch_and_bound(model);
  ASSERT_TRUE(cold.optimal);

  BnBOptions warm;
  warm.warm_start_bound = cold.objective + 1e-6;
  auto warm_result = solve_branch_and_bound(model, warm);
  // The warm bound is the optimum itself: B&B must still find a solution
  // matching it (strictly better is impossible).
  ASSERT_TRUE(warm_result.feasible);
  EXPECT_NEAR(warm_result.objective, cold.objective, 1e-6);
  EXPECT_LE(warm_result.nodes_explored, cold.nodes_explored);
}

TEST(BranchAndBound, UnbeatableWarmStartYieldsNoSolution) {
  Problem p = random_serial_problem(6, 2, 89);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  BnBOptions opt;
  opt.warm_start_bound = 0.0;  // nothing beats zero total degradation
  auto result = solve_branch_and_bound(model, opt);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.objective, kInfinity);
}

TEST(BranchAndBound, NodeLimitReportsTimeout) {
  Problem p = random_serial_problem(12, 4, 90);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  BnBOptions opt;
  opt.max_nodes = 1;
  auto result = solve_branch_and_bound(model, opt);
  // Either the root LP was already integral (lucky) or we timed out.
  EXPECT_TRUE(result.optimal || result.timed_out);
}

}  // namespace
}  // namespace cosched
