// Compile-time kill switch: this TU is built with -DCOSCHED_TRACE_DISABLED,
// -DCOSCHED_PROFILE_DISABLED, -DCOSCHED_LOG_DISABLED and
// -DCOSCHED_ALERTS_DISABLED (see tests/CMakeLists.txt), so every
// COSCHED_TRACE_*, COSCHED_PROFILE_PHASE and COSCHED_LOG macro must expand
// to a no-op — no events, phase samples or log records recorded even with
// the runtime switches on — and the alert engine must refuse to tick or
// spawn its scrape thread. This is the overhead story for builds that want
// instrumentation gone entirely.
#include <gtest/gtest.h>

#include "obs/alerts.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace cosched {
namespace {

#ifndef COSCHED_TRACE_DISABLED
#error "this TU must be compiled with COSCHED_TRACE_DISABLED"
#endif
#ifndef COSCHED_PROFILE_DISABLED
#error "this TU must be compiled with COSCHED_PROFILE_DISABLED"
#endif
#ifndef COSCHED_LOG_DISABLED
#error "this TU must be compiled with COSCHED_LOG_DISABLED"
#endif
#ifndef COSCHED_ALERTS_DISABLED
#error "this TU must be compiled with COSCHED_ALERTS_DISABLED"
#endif

TEST(ObsTracingDisabled, MacrosAreNoOpsEvenWhenRuntimeEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.reset();
  tracer.set_enabled(true);

  {
    COSCHED_TRACE_SPAN(span, "compiled.out", 1.0, "k=v");
    COSCHED_TRACE_INSTANT("compiled.out.instant");
    COSCHED_TRACE_COUNTER("compiled.out.counter", 42.0);
  }

  tracer.set_enabled(false);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dump_text(), "");
  tracer.reset();
}

// The macros must also be valid statements in branch positions — the
// do-while no-op form, not a bare expansion that breaks if/else.
TEST(ObsTracingDisabled, MacrosParseInBranchPositions) {
  bool flag = true;
  if (flag)
    COSCHED_TRACE_INSTANT("then-branch");
  else
    COSCHED_TRACE_COUNTER("else-branch", 1.0);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(ObsLoggingDisabled, MacroIsNoOpEvenAtPassingLevel) {
  Logger logger;  // fresh instance: no cross-test pollution of global()
  logger.set_level(LogLevel::Debug);
  // The disabled macro must not evaluate its arguments against the global
  // logger either; use global() with a known-clean baseline.
  Logger& global = Logger::global();
  global.reset();
  global.set_level(LogLevel::Debug);
  COSCHED_LOG(LogLevel::Error, "compiled.out", "never recorded",
              {log_kv("n", std::int64_t{1})});
  if (true)
    COSCHED_LOG(LogLevel::Error, "branch", "then");
  else
    COSCHED_LOG(LogLevel::Error, "branch", "else");
  EXPECT_EQ(global.records_total(LogLevel::Error), 0u);
  EXPECT_EQ(global.buffered_records(), 0u);
  // The runtime API stays callable: direct log() is a deliberate act and
  // still works in kill-switch builds.
  logger.log(LogLevel::Info, "direct", "explicit call");
  EXPECT_EQ(logger.records_total(LogLevel::Info), 1u);
  global.set_level(LogLevel::Info);
}

TEST(ObsProfilingDisabled, PhaseMacroLeavesNoResidue) {
  Profiler& profiler = Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);
  {
    COSCHED_PROFILE_PHASE(phase, "compiled.out.phase");
  }
  if (true)
    COSCHED_PROFILE_PHASE(branch_phase, "branch-position");
  profiler.set_enabled(false);
  EXPECT_EQ(profiler.render_collapsed().find("compiled.out.phase"),
            std::string::npos);
  profiler.reset();
}

TEST(ObsAlertsDisabled, EngineRefusesToTickOrStart) {
  static_assert(kAlertsDisabled, "kill switch must flip the constant");
  AlertEngineOptions options;
  AlertRule rule;
  rule.name = "never";
  rule.metric = "cosched_depth";
  rule.agg = AlertAgg::Latest;
  rule.threshold = 0.0;
  rule.for_seconds = 0.0;
  options.rules.rules.push_back(rule);
  AlertEngine engine(std::move(options));
  EXPECT_FALSE(engine.tick("cosched_depth 10\n", 0.0));
  EXPECT_FALSE(engine.start());
  EXPECT_FALSE(engine.running());
  EXPECT_EQ(engine.fired_total(), 0u);
  EXPECT_EQ(engine.tsdb().stats().scrapes, 0u);
  EXPECT_EQ(engine.views().at(0).state, AlertState::Inactive);
}

}  // namespace
}  // namespace cosched
