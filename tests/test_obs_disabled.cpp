// Compile-time kill switch: this TU is built with -DCOSCHED_TRACE_DISABLED
// and -DCOSCHED_PROFILE_DISABLED (see tests/CMakeLists.txt), so every
// COSCHED_TRACE_* and COSCHED_PROFILE_PHASE macro must expand to a no-op —
// no events or phase samples recorded even with the runtime switches on.
// This is the overhead story for builds that want instrumentation gone
// entirely.
#include <gtest/gtest.h>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace cosched {
namespace {

#ifndef COSCHED_TRACE_DISABLED
#error "this TU must be compiled with COSCHED_TRACE_DISABLED"
#endif
#ifndef COSCHED_PROFILE_DISABLED
#error "this TU must be compiled with COSCHED_PROFILE_DISABLED"
#endif

TEST(ObsTracingDisabled, MacrosAreNoOpsEvenWhenRuntimeEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.reset();
  tracer.set_enabled(true);

  {
    COSCHED_TRACE_SPAN(span, "compiled.out", 1.0, "k=v");
    COSCHED_TRACE_INSTANT("compiled.out.instant");
    COSCHED_TRACE_COUNTER("compiled.out.counter", 42.0);
  }

  tracer.set_enabled(false);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dump_text(), "");
  tracer.reset();
}

// The macros must also be valid statements in branch positions — the
// do-while no-op form, not a bare expansion that breaks if/else.
TEST(ObsTracingDisabled, MacrosParseInBranchPositions) {
  bool flag = true;
  if (flag)
    COSCHED_TRACE_INSTANT("then-branch");
  else
    COSCHED_TRACE_COUNTER("else-branch", 1.0);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(ObsProfilingDisabled, PhaseMacroLeavesNoResidue) {
  Profiler& profiler = Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);
  {
    COSCHED_PROFILE_PHASE(phase, "compiled.out.phase");
  }
  if (true)
    COSCHED_PROFILE_PHASE(branch_phase, "branch-position");
  profiler.set_enabled(false);
  EXPECT_EQ(profiler.render_collapsed().find("compiled.out.phase"),
            std::string::npos);
  profiler.reset();
}

}  // namespace
}  // namespace cosched
