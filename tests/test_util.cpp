// Unit tests for src/util: dynamic bitset, combinatorics, RNG, stats, table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/combinatorics.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cosched {
namespace {

// ------------------------------------------------------------ DynamicBitset

TEST(DynamicBitset, StartsCleared) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first_clear(), 0u);
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, FindFirstClearSkipsSetPrefix) {
  DynamicBitset b(70);
  for (std::size_t i = 0; i < 66; ++i) b.set(i);
  EXPECT_EQ(b.find_first_clear(), 66u);
  b.set(66);
  b.set(67);
  b.set(68);
  b.set(69);
  EXPECT_EQ(b.find_first_clear(), 70u);  // all set -> size()
}

TEST(DynamicBitset, FindNextSetCrossesWordBoundary) {
  DynamicBitset b(200);
  b.set(5);
  b.set(127);
  b.set(128);
  EXPECT_EQ(b.find_next_set(0), 5u);
  EXPECT_EQ(b.find_next_set(6), 127u);
  EXPECT_EQ(b.find_next_set(128), 128u);
  EXPECT_EQ(b.find_next_set(129), 200u);
}

TEST(DynamicBitset, CollectSetAndClear) {
  DynamicBitset b(10);
  b.set(2);
  b.set(7);
  std::vector<std::int32_t> set_bits, clear_bits;
  b.collect_set(set_bits);
  b.collect_clear(clear_bits);
  EXPECT_EQ(set_bits, (std::vector<std::int32_t>{2, 7}));
  EXPECT_EQ(clear_bits, (std::vector<std::int32_t>{0, 1, 3, 4, 5, 6, 8, 9}));
}

TEST(DynamicBitset, DisjointAndContains) {
  DynamicBitset a(80), b(80);
  a.set(3);
  a.set(70);
  b.set(4);
  EXPECT_TRUE(a.disjoint_with(b));
  b.set(70);
  EXPECT_FALSE(a.disjoint_with(b));
  DynamicBitset c = a;
  c.set(50);
  EXPECT_TRUE(c.contains_all(a));
  EXPECT_FALSE(a.contains_all(c));
}

TEST(DynamicBitset, HashDiffersForDifferentSets) {
  DynamicBitset a(64), b(64);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  DynamicBitset a2(64);
  a2.set(1);
  EXPECT_EQ(a.hash(), a2.hash());
  EXPECT_EQ(a, a2);
}

TEST(DynamicBitset, OutOfRangeThrows) {
  DynamicBitset b(8);
  EXPECT_THROW(b.set(8), ContractViolation);
  EXPECT_THROW(b.test(100), ContractViolation);
}

// ------------------------------------------------------------ combinatorics

TEST(Combinatorics, BinomialSmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(6, 2), 15u);
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(56, 4), 367290u);
}

TEST(Combinatorics, BinomialSaturatesOnOverflow) {
  EXPECT_EQ(binomial(1000, 500), std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinatorics, EnumerationCountsMatchBinomial) {
  std::vector<std::int32_t> pool{3, 5, 8, 9, 12, 15};
  std::size_t count = 0;
  std::set<std::vector<std::int32_t>> seen;
  for_each_combination(pool, 3, [&](const std::vector<std::int32_t>& c) {
    ++count;
    EXPECT_TRUE(seen.insert(c).second) << "duplicate combination";
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    return true;
  });
  EXPECT_EQ(count, binomial(6, 3));
}

TEST(Combinatorics, EnumerationEarlyStop) {
  std::vector<std::int32_t> pool{0, 1, 2, 3, 4};
  std::size_t count = 0;
  for_each_combination(pool, 2, [&](const std::vector<std::int32_t>&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3u);
}

TEST(Combinatorics, ZeroSizedCombination) {
  std::vector<std::int32_t> pool{1, 2};
  std::size_t count = 0;
  for_each_combination(pool, 0, [&](const std::vector<std::int32_t>& c) {
    EXPECT_TRUE(c.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(Combinatorics, RankUnrankRoundTrip) {
  const std::int32_t n = 9;
  const std::size_t k = 4;
  for (std::uint64_t r = 0; r < binomial(9, 4); ++r) {
    auto comb = unrank_combination(r, n, k);
    EXPECT_EQ(rank_combination(comb, n), r);
  }
}

TEST(Combinatorics, UnrankIsLexicographic) {
  auto first = unrank_combination(0, 6, 2);
  EXPECT_EQ(first, (std::vector<std::int32_t>{0, 1}));
  auto last = unrank_combination(binomial(6, 2) - 1, 6, 2);
  EXPECT_EQ(last, (std::vector<std::int32_t>{4, 5}));
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.uniform(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 10000; ++i) {
    Real x = rng.uniform_real(0.15, 0.75);
    EXPECT_GE(x, 0.15);
    EXPECT_LT(x, 0.75);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++buckets[rng.uniform(10)];
  for (int b : buckets) {
    EXPECT_GT(b, samples / 10 - samples / 50);
    EXPECT_LT(b, samples / 10 + samples / 50);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(11);
  std::vector<Real> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
  EXPECT_NEAR(stddev(xs), 3.0, 0.1);
}

// -------------------------------------------------------------------- stats

TEST(Stats, MeanAndStddev) {
  std::vector<Real> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<Real> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Stats, EmpiricalCdfAtThresholds) {
  std::vector<Real> samples{1, 2, 2, 3, 10};
  auto cdf = empirical_cdf(samples, {0.0, 2.0, 9.0, 10.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.6);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 0.8);
  EXPECT_DOUBLE_EQ(cdf[3].fraction, 1.0);
}

// -------------------------------------------------------------------- table

TEST(TextTable, RendersAlignedAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(1.5, 2)});
  t.add_row({"b", "x,y"});
  std::string text = t.render();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

}  // namespace
}  // namespace cosched
